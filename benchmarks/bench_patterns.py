"""Pattern benches: directive vs hand-written MPI across the catalog.

The directive translation should match (or beat, via consolidation)
the hand-written form of each recurring pattern in modelled time.
"""

import numpy as np
import pytest

from repro import mpi
from repro.netmodel import gemini_model
from repro.patterns import get_pattern
from repro.sim import Engine

SIZE = 8
PAYLOAD = 64


def _run_pattern(name, variant):
    spec = get_pattern(name)
    model = gemini_model()
    eng = Engine(SIZE)

    def main(env):
        comm = mpi.init(env, model)
        out = np.full(PAYLOAD, float(env.rank))
        inb = np.zeros(PAYLOAD)
        t0 = env.now
        if variant == "directive":
            spec.run_directive(env, out, inb)
        else:
            spec.run_mpi(comm, out, inb)
        return env.now - t0

    res = eng.run(main)
    return max(res.values)


@pytest.mark.parametrize("name", ["ring", "evenodd", "pipeline"])
def test_bench_pattern_directive(once, name):
    elapsed = once(_run_pattern, name, "directive")
    assert elapsed > 0


@pytest.mark.parametrize("name", ["ring", "evenodd", "pipeline"])
def test_directive_not_slower_than_handwritten(name):
    t_dir = _run_pattern(name, "directive")
    t_mpi = _run_pattern(name, "mpi")
    assert t_dir <= t_mpi * 1.05, \
        f"{name}: directive {t_dir} vs handwritten {t_mpi}"


def test_pipeline_consolidation_wins_clearly():
    """Many small messages: the consolidated sync is a real win."""
    t_dir = _run_pattern("pipeline", "directive")
    t_mpi = _run_pattern("pipeline", "mpi")
    assert t_dir < t_mpi * 0.7
