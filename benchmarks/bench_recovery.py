"""Recovery-runtime bench: overhead vs fault rate, plus crash episodes.

Two deterministic modeled experiments (virtual time only — no host
wall-clock), written to ``BENCH_recovery.json`` and gated by
``check_perf_regression.py``:

* **drop sweep** — the ring pattern under increasing message-drop
  probability with the bounded-retry transport of
  :mod:`repro.recovery`: modeled makespan, retry count and the
  overhead factor against the unfaulted run. Charts how reliable
  delivery degrades with loss.
* **crash scenarios** — an iterative checkpointed ring losing one rank
  mid-run, recovered under each ULFM-style policy: modeled makespan,
  episodes, checkpoints, restore cut and the virtual seconds recovery
  cost. Charts what a failure costs end to end.

Run:  PYTHONPATH=src python benchmarks/bench_recovery.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro import mpi
from repro.core import comm_p2p
from repro.faults import FaultPlan, RankCrash, Watchdog
from repro.faults.fuzz import _ring_prog
from repro.netmodel import gemini_model
from repro.recovery import (
    POLICIES,
    RecoveryConfig,
    RetryPolicy,
    register_state,
    restore,
    run_with_recovery,
)
from repro.sim import Engine

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_OUT = os.path.join(_ROOT, "BENCH_recovery.json")

_MODEL = gemini_model()
_WD = Watchdog(wall_timeout=120.0, stall_events=5_000_000)
_TARGET = "TARGET_COMM_MPI_2SIDE"

NPROCS = 5
DROP_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)
SWEEP_SEED = 12
ITERS = 6


def _ring_main(env):
    mpi.init(env, _MODEL)
    return _ring_prog(env, _TARGET)


def _iter_main(env):
    """Checkpointed iterative ring (the crash-scenario workload)."""
    mpi.init(env, _MODEL)
    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    acc = np.zeros(8)
    start = 0
    cp = restore(env)
    if cp is not None:
        acc[:] = cp.state["acc"] + cp.state["inb"]
        start = cp.cut + 1
    register_state(env, acc=acc)
    for it in range(start, ITERS):
        out = acc + (env.rank + 1) * (it + 1)
        inb = np.zeros(8)
        register_state(env, inb=inb)
        with comm_p2p(env, sender=prev, receiver=nxt, sbuf=out, rbuf=inb):
            pass
        acc += inb
    return acc.tolist()


def drop_sweep() -> list[dict]:
    """Overhead of bounded-retry delivery vs message-drop probability."""
    clean = Engine(NPROCS).run(_ring_main).makespan
    config = RecoveryConfig(retry=RetryPolicy(max_retries=6))
    points = []
    for drop in DROP_RATES:
        plan = FaultPlan(seed=SWEEP_SEED, drop_prob=drop,
                         max_retransmits=6)
        res = run_with_recovery(_ring_main, NPROCS, faults=plan,
                                config=config, watchdog=_WD)
        points.append({
            "drop_prob": drop,
            "makespan": res.makespan,
            "retries": res.stats.retries,
            "overhead": round(res.makespan / clean, 6),
            "restarts": res.stats.restarts,
        })
        print(f"  drop={drop:<5} makespan={res.makespan:.3e} "
              f"retries={res.stats.retries:>3} "
              f"overhead={res.makespan / clean:6.3f}x")
    return points


def crash_scenarios() -> list[dict]:
    """One mid-run rank loss recovered under each policy."""
    ref = Engine(NPROCS).run(_iter_main)
    crash_at = ref.finish_times[2] * 0.5
    scenarios = []
    for policy in POLICIES:
        plan = FaultPlan(seed=SWEEP_SEED,
                         crashes=(RankCrash(rank=2, at=crash_at),))
        res = run_with_recovery(_iter_main, NPROCS, faults=plan,
                                config=RecoveryConfig(policy=policy),
                                watchdog=_WD)
        rstats = res.recovery
        episode = rstats.episodes[0]
        scenarios.append({
            "name": f"ring-iter/{policy}",
            "policy": policy,
            "clean_makespan": ref.makespan,
            "makespan": res.makespan,
            "restarts": rstats.restarts,
            "checkpoints": rstats.checkpoints_taken,
            "failures_detected": rstats.failures_detected,
            "restore_cut": episode.restore_cut,
            "recovery_wall_s": rstats.recovery_wall_s,
            "final_world": rstats.final_world,
        })
        print(f"  {policy:<8} makespan={res.makespan:.3e} "
              f"restore_cut={episode.restore_cut} "
              f"recovery_wall={rstats.recovery_wall_s:.3e}s "
              f"world={rstats.final_world}")
    return scenarios


def run_bench() -> dict:
    print("drop sweep (ring, bounded-retry transport):")
    points = drop_sweep()
    print("crash scenarios (iterative checkpointed ring):")
    scenarios = crash_scenarios()
    return {
        "benchmark": "recovery_runtime",
        "model": "gemini (calibrated default)",
        "nprocs": NPROCS,
        "pattern": "ring",
        "sweep_seed": SWEEP_SEED,
        "points": points,
        "scenarios": scenarios,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=_OUT,
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    report = run_bench()
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
