"""Figure 4: random-spin-configuration communication.

Paper claims: directive-MPI ~4x faster than the original, directive-
SHMEM ~38x; the text's ablation (original with one MPI_Waitall per
loop) ~2.6x — leaving ~1.4x / ~14.5x residual for the two targets.
"""

import pytest

from repro.bench.harness import figure4
from repro.bench.report import mean_speedup

ORIG = "original"
ABLA = "original + Waitall (ablation)"
DMPI = "MPI target / directive"
D1S = "MPI 1-sided target / directive (extension)"
DSHM = "SHMEM target / directive"


@pytest.fixture(scope="module")
def fig4_quick():
    return figure4(quick=True, wl_steps=2)


def test_bench_figure4(once):
    fig = once(figure4, quick=True, wl_steps=1)
    assert len(fig.series) == 5


class TestShapeCriteria:
    def test_strict_ordering_everywhere(self, fig4_quick):
        """SHMEM > 1-sided > directive-MPI > Waitall ablation >
        original, at every process count."""
        for i in range(len(fig4_quick.xs)):
            t = {s: fig4_quick.series[s][i] for s in fig4_quick.series}
            assert t[ORIG] > t[ABLA] > t[DMPI] > t[D1S] > t[DSHM], \
                f"ordering broken at P={fig4_quick.xs[i]}: {t}"

    def test_mpi_speedup_band(self, fig4_quick):
        """Paper: ~4x. Accept 3-5x."""
        up = mean_speedup(fig4_quick, ORIG, DMPI)
        assert 3.0 <= up <= 5.0, f"MPI directive speedup {up:.2f}x"

    def test_shmem_speedup_band(self, fig4_quick):
        """Paper: ~38x. Accept 25-50x."""
        up = mean_speedup(fig4_quick, ORIG, DSHM)
        assert 25.0 <= up <= 50.0, f"SHMEM directive speedup {up:.2f}x"

    def test_waitall_ablation_band(self, fig4_quick):
        """Paper: ~2.6x. Accept 2-3.5x."""
        up = mean_speedup(fig4_quick, ORIG, ABLA)
        assert 2.0 <= up <= 3.5, f"Waitall ablation speedup {up:.2f}x"

    def test_residual_factors(self, fig4_quick):
        """Paper: 1.4x MPI and 14.5x SHMEM over the ablation."""
        mpi_res = mean_speedup(fig4_quick, ABLA, DMPI)
        shm_res = mean_speedup(fig4_quick, ABLA, DSHM)
        assert 1.15 <= mpi_res <= 1.8, f"MPI residual {mpi_res:.2f}x"
        assert 8.0 <= shm_res <= 20.0, f"SHMEM residual {shm_res:.2f}x"
