"""Productivity: the Listing 4 -> Listing 5 comparison.

The paper's productivity claim: the directive version needs far fewer
lines (no manual packing, no derived-type boilerplate) and the
translator generates the library calls — "fewer lines of code and more
clearly expressed communication" (Section IV-A).
"""

from repro.bench.harness import productivity


def test_bench_translation(once):
    result = once(productivity)
    assert result["generated_c"]


class TestProductivityCriteria:
    def test_loc_reduction_at_least_3x(self):
        result = productivity()
        assert result["reduction_factor"] >= 3.0, \
            (f"{result['original_loc']} -> {result['directive_loc']} "
             "lines is less than the expected 3x reduction")

    def test_translation_covers_all_payloads(self):
        """3 directives: 1 struct + 2 + 4 buffers = 7 Isend/Irecv pairs."""
        result = productivity()
        assert result["generated_isend_calls"] == 7
        assert result["generated_waitall_calls"] == 1

    def test_struct_created_once(self):
        result = productivity()
        assert result["generated_struct_creations"] == 1

    def test_generated_code_mentions_atom_fields(self):
        out = productivity()["generated_c"]
        # The derived type covers the 14 scalar fields (blocklengths
        # include header[80] and evec[3]).
        assert "MPI_Type_create_struct(14" in out
