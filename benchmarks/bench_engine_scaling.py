"""Scheduler scaling bench: heap/handoff engine vs the seed scheduler.

The paper's Figure 3/4 sweeps run P = 33..337 simulated ranks; the
scheduler's own overhead is what bounds how large a sweep is practical.
This bench runs the same ring-exchange workload (every rank Irecv/Isend
with its neighbours + Waitall, repeated) under

* :class:`repro.sim.Engine` — the (now, rank)-keyed min-heap ready
  queue with direct rank-to-rank baton handoff, and
* :class:`repro.sim.SeedEngine` — the seed algorithm: O(P) ready-list
  rebuild per dispatch, O(P) scan per yield, scheduler-thread bounce on
  every slice,

asserts the virtual-time results are identical, and records host
wall-clock versus P into ``BENCH_engine.json``. The baseline is mildly
*conservative*: ``SeedEngine`` shares the current lock-based baton
(cheaper than the seed's ``threading.Event``), so true speedups over
the seed commit are slightly larger than reported.

Run:  PYTHONPATH=src python benchmarks/bench_engine_scaling.py
or:   PYTHONPATH=src python -m pytest benchmarks/bench_engine_scaling.py
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np

from repro import mpi
from repro.netmodel import gemini_model
from repro.sim import Engine, SeedEngine

#: The paper's Fig. 3 sweep endpoints (32k atoms / group_size + 1 WL
#: rank gives 33..337 ranks); 128 is the acceptance-criterion point.
PROCESS_COUNTS = (33, 65, 128, 257, 337)
#: Subset the CI perf-regression job sweeps (--quick). The per-point
#: workload (ITERATIONS, PAYLOAD) is identical to the full sweep, so
#: modeled values at a given P match the committed baseline exactly.
QUICK_PROCESS_COUNTS = (33, 65, 128)
ITERATIONS = 20
PAYLOAD = 256

_MODEL = gemini_model()

_OUT = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                    "BENCH_engine.json")


def _ring_main(env):
    comm = mpi.init(env, _MODEL)
    out = np.full(PAYLOAD, float(env.rank))
    inb = np.zeros(PAYLOAD)
    for _ in range(ITERATIONS):
        rreq = comm.Irecv(inb, source=(env.rank - 1) % env.size)
        sreq = comm.Isend(out, dest=(env.rank + 1) % env.size)
        comm.Waitall([rreq, sreq])
        env.compute(1e-6)
    return env.now


def _timed_run(engine_cls, nprocs: int):
    eng = engine_cls(nprocs)
    t0 = time.perf_counter()
    res = eng.run(_ring_main)
    wall = time.perf_counter() - t0
    return res, wall, eng.stats


def run_scaling(process_counts=PROCESS_COUNTS, repeats: int = 3) -> dict:
    """Measure both engines across ``process_counts``; best-of-repeats."""
    points = []
    for nprocs in process_counts:
        seed_wall = new_wall = float("inf")
        seed_res = new_res = None
        new_stats = None
        for _ in range(repeats):
            res, wall, _ = _timed_run(SeedEngine, nprocs)
            if wall < seed_wall:
                seed_wall, seed_res = wall, res
            res, wall, stats = _timed_run(Engine, nprocs)
            if wall < new_wall:
                new_wall, new_res, new_stats = wall, res, stats
        assert new_res.makespan == seed_res.makespan, \
            f"P={nprocs}: makespan diverged"
        assert new_res.finish_times == seed_res.finish_times, \
            f"P={nprocs}: finish times diverged"
        points.append({
            "nprocs": nprocs,
            "seed_wall_seconds": round(seed_wall, 6),
            "heap_wall_seconds": round(new_wall, 6),
            "speedup": round(seed_wall / new_wall, 3),
            "makespan": new_res.makespan,
            "switches": new_stats.switches,
            "direct_handoffs": new_stats.direct_handoffs,
            "fast_yields": new_stats.fast_yields,
            "heap_ops": new_stats.heap_ops,
        })
        print(f"P={nprocs:4d}  seed={seed_wall:7.3f}s  "
              f"heap={new_wall:7.3f}s  "
              f"speedup={seed_wall / new_wall:5.2f}x  (identical results)")
    return {
        "benchmark": "engine_scaling_ring_exchange",
        "workload": {
            "pattern": "ring exchange (Irecv/Isend + Waitall)",
            "iterations": ITERATIONS,
            "payload_doubles": PAYLOAD,
        },
        "baseline": "SeedEngine (seed O(P) scheduler, PR 1 reference)",
        "candidate": "Engine (min-heap ready queue + direct handoff)",
        "points": points,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="sweep only P=%s with 2 repeats (CI "
                             "perf-regression mode)"
                             % (QUICK_PROCESS_COUNTS,))
    parser.add_argument("--out", default=_OUT,
                        help="output JSON path (default: %(default)s)")
    args = parser.parse_args(argv)
    if args.quick:
        report = run_scaling(process_counts=QUICK_PROCESS_COUNTS,
                             repeats=2)
    else:
        report = run_scaling()
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")


# -- pytest entry points (not part of tier-1: testpaths excludes this dir)


def test_heap_engine_2x_faster_at_p128():
    """Acceptance criterion: >= 2x wall-clock speedup on a P=128 ring."""
    report = run_scaling(process_counts=(128,), repeats=3)
    speedup = report["points"][0]["speedup"]
    assert speedup >= 2.0, f"only {speedup}x at P=128"


if __name__ == "__main__":
    main()
