"""Figure 3: single-atom-data communication vs process count.

Paper claim: the directive translations (MPI and SHMEM targets) show
*comparable* performance to the original pack/unpack code, across the
process sweep.
"""

import pytest

from repro.bench.harness import figure3, paper_pcounts


@pytest.fixture(scope="module")
def fig3_quick():
    # t=2048 keeps the payloads bandwidth-dominated, as in the full
    # experiment; far smaller payloads let per-message overheads
    # differentiate the targets (SHMEM's small-message edge), which is
    # Figure 4's regime, not Figure 3's.
    return figure3(quick=True, t=2048, tc=8)


def test_bench_figure3(once, fig3_quick):
    """Benchmarks one additional sweep; asserts on the module fixture's."""
    fig = once(figure3, quick=True, t=256, tc=4)
    assert len(fig.series) == 3


class TestShapeCriteria:
    def test_three_series_present(self, fig3_quick):
        assert set(fig3_quick.series) == {
            "original", "MPI target / directive",
            "SHMEM target / directive"}

    def test_series_comparable_within_band(self, fig3_quick):
        """All three within ~±30% of one another at every P."""
        for i in range(len(fig3_quick.xs)):
            values = [fig3_quick.series[s][i] for s in fig3_quick.series]
            assert max(values) / min(values) < 1.3, \
                f"series diverge at P={fig3_quick.xs[i]}: {values}"

    def test_time_increases_with_processes(self, fig3_quick):
        for label, ys in fig3_quick.series.items():
            assert all(a < b for a, b in zip(ys, ys[1:])), \
                f"{label} is not increasing: {ys}"

    def test_growth_is_roughly_linear_in_instances(self, fig3_quick):
        """Fig 3 grows linearly (the WL rank's serial deck distribution
        dominates): time(M=12) ~ 6x time(M=2), well below quadratic."""
        ys = fig3_quick.series["original"]
        ms = [(p - 1) // 16 for p in fig3_quick.xs]
        ratio = (ys[-1] / ys[0]) / (ms[-1] / ms[0])
        assert 0.5 < ratio < 2.0

    def test_paper_x_axis_default(self):
        assert paper_pcounts()[0] == 33
        assert paper_pcounts()[-1] == 337
