"""Sync-plan correctness fuzzer — CLI driver.

Runs every communication pattern (ring, evenodd, halo2d, butterfly and
WL-LSMS quick) on every lowering target (MPI two-sided, MPI one-sided,
SHMEM) under many seed-deterministic adversarial timing schedules, and
asserts the final user-visible data is bit-identical to an unperturbed
baseline. Failures print their ``(pattern, target, seed)`` triple for
bit-identical replay.

Run:  PYTHONPATH=src python benchmarks/fuzz_sync_plans.py
      PYTHONPATH=src python benchmarks/fuzz_sync_plans.py --seeds 200
      PYTHONPATH=src python benchmarks/fuzz_sync_plans.py \
          --patterns ring halo2d --targets TARGET_COMM_SHMEM
      PYTHONPATH=src python benchmarks/fuzz_sync_plans.py \
          --sanitize --seeds 25 --stats-out fuzz-sanitize-stats.json

Exit status 0 when every schedule passed, 1 otherwise — suitable as a
CI gate (the ``fuzz`` job runs exactly this). ``--sanitize`` arms the
byte-interval access sanitizer in every run (a ``RaceError`` fails the
schedule like any data divergence — the differential soundness gate),
and ``--stats-out`` writes a JSON summary including the accumulated
``sanitizer_checks`` count.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.faults import CASE_NAMES, FUZZ_TARGETS, fuzz


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fuzz sync-plan correctness under adversarial timing")
    parser.add_argument("--seeds", type=int, default=50,
                        help="seeds per (pattern, target) [%(default)s]")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the sweep [%(default)s]")
    parser.add_argument("--patterns", nargs="+", default=list(CASE_NAMES),
                        choices=list(CASE_NAMES), metavar="PATTERN",
                        help=f"subset of {', '.join(CASE_NAMES)}")
    parser.add_argument("--targets", nargs="+", default=list(FUZZ_TARGETS),
                        choices=list(FUZZ_TARGETS), metavar="TARGET",
                        help=f"subset of {', '.join(FUZZ_TARGETS)}")
    parser.add_argument("--sanitize", action="store_true",
                        help="arm the access sanitizer in every run "
                             "(RaceError fails the schedule)")
    parser.add_argument("--stats-out", metavar="PATH", default=None,
                        help="write a JSON sweep summary (incl. "
                             "sanitizer_checks) to PATH")
    args = parser.parse_args(argv)

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    total = len(args.patterns) * len(args.targets) * args.seeds
    mode = " with access sanitizer" if args.sanitize else ""
    print(f"fuzzing {len(args.patterns)} pattern(s) x "
          f"{len(args.targets)} target(s) x {args.seeds} seed(s) "
          f"= {total} schedules{mode}")
    t0 = time.perf_counter()
    tally: dict = {}
    failures = fuzz(patterns=args.patterns, targets=args.targets,
                    seeds=seeds, progress=print,
                    sanitize=args.sanitize, tally=tally)
    dt = time.perf_counter() - t0

    if args.stats_out:
        summary = {
            "patterns": list(args.patterns),
            "targets": list(args.targets),
            "seeds": args.seeds,
            "seed_base": args.seed_base,
            "sanitize": args.sanitize,
            "schedules": total,
            "failures": len(failures),
            "sanitizer_checks": tally.get("sanitizer_checks", 0),
            "runs": tally.get("runs", 0),
            "wall_seconds": round(dt, 3),
        }
        with open(args.stats_out, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2)
        print(f"stats written to {args.stats_out}")

    if failures:
        print(f"\n{len(failures)} failing schedule(s):")
        for f in failures:
            print(str(f))
        print(f"\nFAILED in {dt:.1f}s")
        return 1
    checks = tally.get("sanitizer_checks", 0)
    suffix = (f" ({checks} sanitizer checks)"
              if args.sanitize and checks else "")
    print(f"\nall {total} schedules passed in {dt:.1f}s{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
