"""Legacy setuptools shim.

The execution environment has no `wheel` package and no network, so
PEP-660 editable installs fail; this shim lets `pip install -e .
--no-build-isolation` take the `setup.py develop` path. All project
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
