"""Ensure the in-tree sources are importable even without installation.

The benchmark environment has no network and no `wheel` package, so
`pip install -e .` (PEP 660) cannot build an editable wheel; `python
setup.py develop` is the supported offline install. This shim makes
`pytest` work from a clean checkout either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
