"""Property-based tests over the pattern catalog."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import mpi
from repro.netmodel import zero_model
from repro.patterns import butterfly, get_pattern, halo2d
from repro.patterns.halo2d import HaloBuffers, grid_shape, neighbours
from repro.sim import Engine


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        comm = mpi.init(env, model)
        return fn(env, comm)

    return eng.run(main)


@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=1, max_value=24))
@settings(max_examples=25, deadline=None)
def test_property_ring_directive_equals_handwritten(nprocs, payload):
    spec = get_pattern("ring")
    results = {}
    for variant in ("directive", "mpi"):
        def prog(env, comm, _v=variant):
            out = np.arange(float(payload)) + 1000 * env.rank
            inb = np.zeros(payload)
            if _v == "directive":
                spec.run_directive(env, out, inb)
            else:
                spec.run_mpi(comm, out, inb)
            return inb.tolist()

        results[variant] = run(nprocs, prog).values
    assert results["directive"] == results["mpi"]


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_property_grid_shape_covers_all_ranks(nprocs):
    py, px = grid_shape(nprocs)
    assert py * px == nprocs
    assert py <= px


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_property_neighbour_relation_symmetric(nprocs):
    """r is my north neighbour iff I am r's south neighbour, etc."""
    py, px = grid_shape(nprocs)
    opposite = {"north": "south", "south": "north",
                "west": "east", "east": "west"}
    for rank in range(nprocs):
        for d, peer in neighbours(rank, py, px).items():
            if peer is not None:
                back = neighbours(peer, py, px)[opposite[d]]
                assert back == rank


@given(st.integers(min_value=1, max_value=4),
       st.floats(min_value=-100, max_value=100, allow_nan=False))
@settings(max_examples=20, deadline=None)
def test_property_butterfly_assembles_all_contributions(log_p, base):
    nprocs = 1 << log_p

    def prog(env, comm):
        return butterfly.run_directive(env, base + env.rank).tolist()

    res = run(nprocs, prog)
    expected = [base + r for r in range(nprocs)]
    for got in res.values:
        assert got == pytest.approx(expected)


@given(st.integers(min_value=2, max_value=9),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=2, max_value=6))
@settings(max_examples=15, deadline=None)
def test_property_halo2d_directive_equals_handwritten(nprocs, ny, nx):
    py, px = grid_shape(nprocs)
    results = {}
    for variant in ("directive", "mpi"):
        def prog(env, comm, _v=variant):
            block = (np.arange(float(ny * nx)).reshape(ny, nx)
                     + 31.0 * env.rank)
            bufs = HaloBuffers(ny, nx)
            if _v == "directive":
                halo2d.run_directive(env, block, bufs, py, px)
            else:
                halo2d.run_mpi(comm, block, bufs, py, px)
            return {d: h.tolist() for d, h in bufs.halo.items()}

        results[variant] = run(nprocs, prog).values
    assert results["directive"] == results["mpi"]
