"""Patterns: directive and raw-MPI forms agree; analysis classifies."""

import numpy as np
import pytest

from repro import mpi
from repro.core.analysis import classify_pattern, comm_graph
from repro.netmodel import zero_model
from repro.patterns import PATTERNS, get_pattern
from repro.patterns import fan, halo, pipeline
from repro.sim import Engine


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        comm = mpi.init(env, model)
        return fn(env, comm)

    return eng.run(main)


class TestRing:
    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    @pytest.mark.parametrize("size", [2, 3, 7])
    def test_both_forms_rotate(self, variant, size):
        spec = get_pattern("ring")

        def prog(env, comm):
            out = np.full(3, float(env.rank))
            inb = np.zeros(3)
            if variant == "directive":
                spec.run_directive(env, out, inb)
            else:
                spec.run_mpi(comm, out, inb)
            return inb[0]

        res = run(size, prog)
        expected = [(r - 1) % size for r in range(size)]
        assert res.values == [float(e) for e in expected]


class TestEvenOdd:
    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    @pytest.mark.parametrize("size", [2, 4, 5])
    def test_both_forms(self, variant, size):
        spec = get_pattern("evenodd")

        def prog(env, comm):
            out = np.full(2, float(env.rank * 10))
            inb = np.zeros(2)
            if variant == "directive":
                spec.run_directive(env, out, inb)
            else:
                spec.run_mpi(comm, out, inb)
            return inb[0]

        res = run(size, prog)
        for r in range(size):
            if r % 2 == 1:
                assert res.values[r] == (r - 1) * 10.0
            else:
                assert res.values[r] == 0.0


class TestHalo:
    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    def test_neighbours_exchanged(self, variant):
        def prog(env, comm):
            interior = np.arange(8.0) + 100 * env.rank
            left = np.zeros(2)
            right = np.zeros(2)
            if variant == "directive":
                halo.run_directive(env, interior, left, right)
            else:
                halo.run_mpi(comm, interior, left, right)
            return (left.tolist(), right.tolist())

        res = run(3, prog)
        # rank 1: left halo = rank 0's last two, right = rank 2's first two
        assert res.values[1] == ([6.0, 7.0], [200.0, 201.0])
        # boundaries untouched
        assert res.values[0][0] == [0.0, 0.0]
        assert res.values[2][1] == [0.0, 0.0]

    def test_directive_consolidates_sync(self):
        model = zero_model()
        eng = Engine(3)

        def main(env):
            comm = mpi.init(env, model)
            interior = np.arange(8.0)
            halo.run_directive(env, interior, np.zeros(2), np.zeros(2))

        eng.run(main)
        # One waitall per rank, instead of up to 4 waits each.
        assert eng.stats.sync_calls["waitall"] == 3
        assert eng.stats.sync_calls["wait"] == 0


class TestPipeline:
    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    def test_chain_forwarding(self, variant):
        def prog(env, comm):
            out = np.arange(5.0) + 10 * env.rank
            inb = np.zeros(5)
            if variant == "directive":
                pipeline.run_directive(env, out, inb)
            else:
                pipeline.run_mpi(comm, out, inb)
            return inb.tolist()

        res = run(3, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert res.values[2] == [10.0, 11.0, 12.0, 13.0, 14.0]
        assert res.values[0] == [0.0] * 5


class TestFan:
    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    def test_fanout(self, variant):
        def prog(env, comm):
            data = (np.arange(float(env.size * 2)).reshape(env.size, 2)
                    if env.rank == 1 else None)
            mine = np.zeros(2)
            if variant == "directive":
                fan.run_fanout_directive(env, 1, data, mine)
            else:
                fan.run_fanout_mpi(comm, 1, data, mine)
            return mine.tolist()

        res = run(4, prog)
        for r in range(4):
            assert res.values[r] == [2.0 * r, 2.0 * r + 1]

    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    def test_fanin(self, variant):
        def prog(env, comm):
            mine = np.full(2, float(env.rank + 1))
            collected = np.zeros((env.size, 2)) if env.rank == 0 else None
            if variant == "directive":
                fan.run_fanin_directive(env, 0, mine, collected)
            else:
                fan.run_fanin_mpi(comm, 0, mine, collected)
            return collected[:, 0].tolist() if env.rank == 0 else None

        res = run(3, prog)
        assert res.values[0] == [1.0, 2.0, 3.0]


class TestCatalogAnalysis:
    def test_all_patterns_registered(self):
        assert set(PATTERNS) == {"ring", "evenodd", "halo1d", "pipeline",
                                 "fanout", "fanin", "halo2d",
                                 "butterfly"}

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_pattern("torus")

    @pytest.mark.parametrize("name,expected", [
        ("ring", "ring"),
        ("evenodd", "pairwise"),
        ("halo1d", "shift"),
        ("pipeline", "shift"),
    ])
    def test_dataflow_classification(self, name, expected):
        spec = get_pattern(name)
        g = comm_graph(spec.clauses(), nprocs=8, extra_vars={"n": 4})
        assert classify_pattern(g) == expected

    def test_fan_classification_with_vars(self):
        g = comm_graph(fan.fanout_clauses(), nprocs=6,
                       extra_vars={"root": 0, "peer": 3})
        # A single (root, peer) instance: one edge.
        assert g.edges == [(0, 3)]
