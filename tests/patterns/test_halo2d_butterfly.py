"""2-D halo and butterfly patterns."""

import numpy as np
import pytest

from repro import mpi
from repro.netmodel import zero_model
from repro.patterns import butterfly, halo2d
from repro.patterns.halo2d import HaloBuffers, grid_shape, neighbours
from repro.sim import Engine


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        comm = mpi.init(env, model)
        return fn(env, comm)

    return eng.run(main), eng


class TestGridHelpers:
    @pytest.mark.parametrize("n,expected", [
        (4, (2, 2)), (6, (2, 3)), (9, (3, 3)), (12, (3, 4)), (7, (1, 7)),
    ])
    def test_grid_shape_most_square(self, n, expected):
        assert grid_shape(n) == expected

    def test_neighbours_interior(self):
        # 3x3 grid, rank 4 is the centre.
        nbr = neighbours(4, 3, 3)
        assert nbr == {"north": 1, "south": 7, "west": 3, "east": 5}

    def test_neighbours_corner(self):
        nbr = neighbours(0, 3, 3)
        assert nbr["north"] is None and nbr["west"] is None
        assert nbr["south"] == 3 and nbr["east"] == 1


class TestHalo2D:
    NY, NX = 4, 5

    def _block(self, rank):
        return (np.arange(self.NY * self.NX, dtype=float)
                .reshape(self.NY, self.NX) + 1000.0 * rank)

    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    @pytest.mark.parametrize("nprocs", [4, 6, 9])
    def test_halos_match_neighbour_edges(self, variant, nprocs):
        py, px = grid_shape(nprocs)

        def prog(env, comm):
            block = self._block(env.rank)
            bufs = HaloBuffers(self.NY, self.NX)
            if variant == "directive":
                halo2d.run_directive(env, block, bufs, py, px)
            else:
                halo2d.run_mpi(comm, block, bufs, py, px)
            return {d: h.copy() for d, h in bufs.halo.items()}

        res, _ = run(nprocs, prog)
        for rank in range(nprocs):
            nbr = neighbours(rank, py, px)
            halos = res.values[rank]
            if nbr["north"] is not None:
                expect = self._block(nbr["north"])[-1, :]
                assert np.array_equal(halos["north"], expect)
            else:
                assert not halos["north"].any()
            if nbr["south"] is not None:
                expect = self._block(nbr["south"])[0, :]
                assert np.array_equal(halos["south"], expect)
            if nbr["west"] is not None:
                expect = self._block(nbr["west"])[:, -1]
                assert np.array_equal(halos["west"], expect)
            if nbr["east"] is not None:
                expect = self._block(nbr["east"])[:, 0]
                assert np.array_equal(halos["east"], expect)

    def test_directive_consolidates_all_four_directions(self):
        py, px = grid_shape(9)

        def prog(env, comm):
            block = self._block(env.rank)
            bufs = HaloBuffers(self.NY, self.NX)
            halo2d.run_directive(env, block, bufs, py, px)

        _, eng = run(9, prog)
        # One waitall per rank, though interior ranks move 8 messages.
        assert eng.stats.sync_calls["waitall"] == 9
        assert eng.stats.sync_calls["wait"] == 0

    def test_repeated_exchanges(self):
        py, px = grid_shape(4)

        def prog(env, comm):
            block = self._block(env.rank)
            bufs = HaloBuffers(self.NY, self.NX)
            for _ in range(3):
                halo2d.run_directive(env, block, bufs, py, px)
                block = block + 1.0
            return bufs.halo["east"].copy()

        res, _ = run(4, prog)
        # rank 0's east neighbour is 1; last exchange saw block+2.
        expect = self._block(1)[:, 0] + 2.0
        assert np.array_equal(res.values[0], expect)


class TestButterfly:
    @pytest.mark.parametrize("variant", ["directive", "mpi"])
    @pytest.mark.parametrize("nprocs", [2, 4, 8, 16])
    def test_allgather_by_recursive_doubling(self, variant, nprocs):
        def prog(env, comm):
            contribution = float(env.rank + 1) ** 2
            if variant == "directive":
                return butterfly.run_directive(env, contribution)
            return butterfly.run_mpi(comm, contribution).tolist()

        res, _ = run(nprocs, prog)
        expected = [float(r + 1) ** 2 for r in range(nprocs)]
        for got in res.values:
            assert list(got) == expected

    def test_non_power_of_two_rejected(self):
        def prog(env, comm):
            butterfly.run_directive(env, 1.0)

        from repro.errors import SimProcessError
        with pytest.raises(SimProcessError) as ei:
            run(3, prog)
        assert isinstance(ei.value.original, ValueError)

    def test_round_count_is_logarithmic(self):
        def prog(env, comm):
            butterfly.run_directive(env, 1.0)

        _, eng = run(8, prog)
        # 3 rounds x 8 ranks, each round one message per rank.
        assert eng.stats.messages["mpi2s"] == 24
