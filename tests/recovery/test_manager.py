"""The recovery loop: shrink/respawn, checkpoint restart, structured
failures, stats folding and profile stitching."""

import numpy as np
import pytest

from repro import mpi
from repro.core import comm_p2p
from repro.errors import RankFailedError
from repro.faults import FaultPlan, RankCrash, Watchdog
from repro.faults.fuzz import FUZZ_TARGETS, _ring_prog
from repro.netmodel import gemini_model
from repro.patterns.catalog import power_of_two, valid_world_of
from repro.profiling.chrome import chrome_trace
from repro.recovery import (
    RESPAWN,
    SHRINK,
    RecoveryConfig,
    RecoveryError,
    register_state,
    restore,
    run_with_recovery,
)
from repro.sim import Engine

_MODEL = gemini_model()
_WD = Watchdog(wall_timeout=60.0, stall_events=1_000_000)


def _ring_main(target):
    def main(env):
        mpi.init(env, _MODEL)
        return _ring_prog(env, target)
    return main


ITERS = 5


def _iter_main(env):
    """Iterative accumulating ring, checkpointed every iteration.

    Cut ``k`` snapshots {acc pre-update, inb received} at iteration
    ``k``'s sync boundary, so a restore applies the pending update and
    resumes at ``k + 1``.
    """
    mpi.init(env, _MODEL)
    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    acc = np.zeros(4)
    start = 0
    cp = restore(env)
    if cp is not None:
        acc[:] = cp.state["acc"] + cp.state["inb"]
        start = cp.cut + 1
    register_state(env, acc=acc)
    for it in range(start, ITERS):
        out = acc + (env.rank + 1) * (it + 1)
        inb = np.zeros(4)
        register_state(env, inb=inb)
        with comm_p2p(env, sender=prev, receiver=nxt, sbuf=out, rbuf=inb):
            pass
        acc += inb
    return acc.tolist()


class TestPolicies:
    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    @pytest.mark.parametrize("policy", [SHRINK, RESPAWN])
    def test_ring_crash_recovers_bit_exact(self, target, policy):
        """Acceptance: a crashed ring completes under either policy on
        every lowering target, with payloads bit-exact against the
        unfaulted baseline at the final world size."""
        plan = FaultPlan(seed=3, drop_prob=0.2,
                         crashes=(RankCrash(rank=2, at=0.0),))
        res = run_with_recovery(
            _ring_main(target), 5, faults=plan,
            config=RecoveryConfig(policy=policy), watchdog=_WD)
        world = res.recovery.final_world
        assert world == (4 if policy == SHRINK else 5)
        base = Engine(world).run(_ring_main(target)).values
        assert res.values == base
        assert res.recovery.restarts == 1
        assert res.stats.failures_detected >= 1

    def test_shrink_respects_pattern_validity(self):
        """Butterfly's power-of-two constraint (from the catalog) makes
        shrink fall 4 -> 2, not 4 -> 3."""
        from repro.faults.fuzz import _butterfly_prog

        def main(env):
            mpi.init(env, _MODEL)
            return _butterfly_prog(env, "TARGET_COMM_MPI_2SIDE")

        assert valid_world_of("butterfly") is power_of_two
        plan = FaultPlan(seed=1, crashes=(RankCrash(rank=1, at=0.0),))
        cfg = RecoveryConfig(policy=SHRINK, valid_world=power_of_two)
        res = run_with_recovery(main, 4, faults=plan, config=cfg,
                                watchdog=_WD)
        assert res.recovery.final_world == 2
        assert res.values == Engine(2).run(main).values

    def test_shrink_below_min_world_gives_up(self):
        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        cfg = RecoveryConfig(policy=SHRINK, min_world=2)
        with pytest.raises(RecoveryError):
            run_with_recovery(_ring_main("TARGET_COMM_MPI_2SIDE"), 2,
                              faults=plan, config=cfg, watchdog=_WD)

    def test_max_recoveries_zero_reraises(self):
        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        cfg = RecoveryConfig(max_recoveries=0)
        with pytest.raises(RecoveryError) as ei:
            run_with_recovery(_ring_main("TARGET_COMM_MPI_2SIDE"), 3,
                              faults=plan, config=cfg, watchdog=_WD)
        assert isinstance(ei.value.__cause__, RankFailedError)

    def test_double_crash_takes_two_episodes(self):
        ref = Engine(4).run(_iter_main)
        plan = FaultPlan(seed=9, crashes=(
            RankCrash(rank=1, at=ref.makespan * 0.3),
            RankCrash(rank=3, at=ref.makespan * 0.6)))
        res = run_with_recovery(_iter_main, 4, faults=plan,
                                config=RecoveryConfig(policy=RESPAWN),
                                watchdog=_WD)
        assert res.values == ref.values
        assert len(res.recovery.episodes) == 2
        assert res.recovery.restarts == 2

    def test_degraded_completion_is_recovered_too(self):
        """A crash nobody touches lets the attempt finish degraded; the
        manager still recovers so the caller gets the full answer."""
        def main(env):
            mpi.init(env, _MODEL)
            if env.rank == 2:
                env.compute(1e-6)
                return "lonely"
            peer = 1 - env.rank if env.rank < 2 else env.rank
            out = np.full(2, float(env.rank))
            inb = np.zeros(2)
            with comm_p2p(env, sender=peer, receiver=peer,
                          sendwhen=env.rank < 2, receivewhen=env.rank < 2,
                          sbuf=out, rbuf=inb):
                pass
            return inb.tolist()

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=2, at=0.0),))
        res = run_with_recovery(main, 3, faults=plan,
                                config=RecoveryConfig(policy=RESPAWN),
                                watchdog=_WD)
        assert res.values[2] == "lonely"
        assert res.recovery.restarts == 1
        assert not res.degraded


class TestCheckpointRestart:
    def test_respawn_restores_consistent_cut(self):
        ref = Engine(4).run(_iter_main)
        plan = FaultPlan(seed=7,
                         crashes=(RankCrash(rank=2, at=ref.makespan / 2),))
        res = run_with_recovery(_iter_main, 4, faults=plan,
                                config=RecoveryConfig(policy=RESPAWN),
                                watchdog=_WD, profile=True)
        assert res.values == ref.values
        episode = res.recovery.episodes[0]
        assert episode.restore_cut >= 0
        assert episode.restore_time > 0.0
        assert res.stats.checkpoints_taken > 0
        # every surviving rank emitted a restore mark on the restart
        assert len(res.profile.of_kind("restore")) == 4

    def test_checkpoints_disabled_restarts_from_scratch(self):
        ref = Engine(4).run(_iter_main)
        plan = FaultPlan(seed=7,
                         crashes=(RankCrash(rank=2, at=ref.makespan / 2),))
        cfg = RecoveryConfig(policy=RESPAWN, checkpoint=False)
        res = run_with_recovery(_iter_main, 4, faults=plan, config=cfg,
                                watchdog=_WD)
        assert res.values == ref.values
        assert res.recovery.episodes[0].restore_cut == -1
        assert res.stats.checkpoints_taken == 0

    def test_shrink_clears_old_world_cuts(self):
        ref = Engine(4).run(_iter_main)
        # Crashes fire at dispatch boundaries; 0.3x the rank's finish
        # time reliably lands before its last dispatch.
        plan = FaultPlan(seed=5, crashes=(
            RankCrash(rank=1, at=ref.finish_times[1] * 0.3),))
        res = run_with_recovery(_iter_main, 4, faults=plan,
                                config=RecoveryConfig(policy=SHRINK),
                                watchdog=_WD)
        assert res.recovery.episodes[0].restore_cut == -1
        assert res.values == Engine(3).run(_iter_main).values


class TestStructuredFailure:
    def test_rank_failed_error_carries_structured_fields(self):
        def main(env):
            comm = mpi.init(env, _MODEL)
            if env.rank == 0:
                env.compute(1.0)
                comm.Send(np.zeros(2), dest=1)
            return None

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        with pytest.raises(RankFailedError) as ei:
            Engine(2, faults=plan).run(main)
        err = ei.value
        assert err.failed_rank == 1
        assert err.failure_time is not None and err.failure_time >= 0.0
        assert err.detected_by == 0

    def test_quiescence_failure_has_no_detector(self):
        def main(env):
            comm = mpi.init(env, _MODEL)
            if env.rank == 0:
                comm.Recv(np.zeros(2), source=1)
            return None

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        with pytest.raises(RankFailedError) as ei:
            Engine(2, faults=plan).run(main)
        assert ei.value.failed_rank == 1
        assert ei.value.detected_by is None

    def test_degraded_result_reports_failures(self):
        def main(env):
            mpi.init(env, _MODEL)
            env.compute(1e-6)
            return env.rank

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        res = Engine(3, faults=plan).run(main)
        assert res.degraded
        assert [ev.rank for ev in res.failures] == [1]
        report = res.failure_report()
        assert "rank 1 failed" in report
        assert "2 of 3 ranks finished" in report
        assert "failed_ranks=[1]" in repr(res)


class TestStatsAndProfile:
    def test_counters_fold_across_attempts(self):
        plan = FaultPlan(seed=3, drop_prob=0.3,
                         crashes=(RankCrash(rank=2, at=0.0),))
        res = run_with_recovery(_ring_main("TARGET_COMM_MPI_2SIDE"), 5,
                                faults=plan,
                                config=RecoveryConfig(policy=RESPAWN),
                                watchdog=_WD)
        stats, rstats = res.stats, res.recovery
        assert stats.retries == rstats.retries > 0
        assert stats.restarts == rstats.restarts == 1
        assert stats.failures_detected == rstats.failures_detected >= 1
        assert stats.recovery_wall_s == rstats.recovery_wall_s > 0.0
        for token in ("retries=", "restarts=1", "failures_detected="):
            assert token in stats.summary()

    def test_stitched_profile_and_chrome_export(self):
        """The merged profile spans all attempts on one timeline with a
        recovery bridge, and survives Chrome export."""
        plan = FaultPlan(seed=3, drop_prob=0.2,
                         crashes=(RankCrash(rank=2, at=0.0),))
        res = run_with_recovery(_ring_main("TARGET_COMM_MPI_2SIDE"), 5,
                                faults=plan,
                                config=RecoveryConfig(policy=RESPAWN),
                                watchdog=_WD, profile=True)
        prof = res.profile
        bridges = prof.of_kind("recovery")
        assert len(bridges) == 1
        assert bridges[0].attrs["policy"] == RESPAWN
        assert bridges[0].attrs["failed_ranks"] == (2,)
        # attempts are ordered on the stitched timeline
        attempts = {s.attrs.get("attempt") for s in prof
                    if s.kind != "recovery"}
        assert attempts == {0, 1}
        end_of_0 = max(s.t1 for s in prof
                       if s.attrs.get("attempt") == 0)
        start_of_1 = min(s.t0 for s in prof
                         if s.attrs.get("attempt") == 1)
        assert start_of_1 >= end_of_0
        assert prof.of_kind("detect")
        assert prof.of_kind("retry")
        # Chrome export renders recovery kinds without falling through
        trace = chrome_trace(prof)
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "recovery" in names and "crash" in names
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"detect", "retry", "recovery"} <= cats

    def test_faultplan_required_not_injector(self):
        compiled = FaultPlan(seed=0).compile()
        with pytest.raises(RecoveryError):
            run_with_recovery(_ring_main("TARGET_COMM_MPI_2SIDE"), 3,
                              faults=compiled)
