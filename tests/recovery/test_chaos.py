"""Chaos soak: quick representative slices by default, the acceptance
sweep (>= 50 seeds per combination) under ``-m slow``."""

import json

import pytest

from repro.faults.chaos import (
    SOAK_NAMES,
    chaos_one,
    chaos_plan,
    chaos_soak,
    main as chaos_main,
)
from repro.faults.fuzz import FUZZ_TARGETS
from repro.recovery import POLICIES


class TestPlanGeneration:
    def test_plan_is_seed_deterministic(self):
        from repro.faults.chaos import SOAK_CASES
        case = next(c for c in SOAK_CASES if c.name == "ring")
        a = chaos_plan(case, FUZZ_TARGETS[0], 7, 1e-4, 1)
        b = chaos_plan(case, FUZZ_TARGETS[0], 7, 1e-4, 1)
        assert a == b
        c2 = chaos_plan(case, FUZZ_TARGETS[0], 8, 1e-4, 1)
        assert a != c2

    def test_plan_crashes_land_inside_makespan(self):
        from repro.faults.chaos import SOAK_CASES
        case = next(c for c in SOAK_CASES if c.name == "halo2d")
        for seed in range(10):
            plan = chaos_plan(case, FUZZ_TARGETS[0], seed, 2e-4, 2)
            assert len(plan.crashes) == 2
            assert len({c.rank for c in plan.crashes}) == 2
            for crash in plan.crashes:
                assert 0.0 <= crash.at <= 2e-4
            assert plan.drop_prob > 0      # chaos = crash AND drops
            assert plan.stalls             # AND a stall


class TestQuickSoak:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_one_seed_every_pattern_one_target(self, policy):
        failures = chaos_soak(patterns=SOAK_NAMES,
                              targets=FUZZ_TARGETS[:1],
                              policies=(policy,), seeds=range(1))
        assert failures == []

    def test_one_pattern_every_target(self):
        failures = chaos_soak(patterns=("ring",), targets=FUZZ_TARGETS,
                              policies=POLICIES, seeds=range(2))
        assert failures == []

    def test_double_crash_single_combo(self):
        assert chaos_one("halo2d", FUZZ_TARGETS[0], "respawn", 0,
                         nfail=2) is None
        assert chaos_one("butterfly", FUZZ_TARGETS[0], "shrink", 0,
                         nfail=2) is None

    def test_stats_record_shape(self):
        stats = {}
        chaos_soak(patterns=("ring",), targets=FUZZ_TARGETS[:1],
                   policies=("respawn",), seeds=range(2), stats=stats)
        key = f"ring/{FUZZ_TARGETS[0]}/respawn"
        assert stats[key] == {"runs": 2, "failures": 0, "nfail": 1}


class TestCli:
    def test_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        rc = chaos_main(["--patterns", "ring", "--targets",
                         FUZZ_TARGETS[0], "--policies", "respawn",
                         "--seeds", "2", "--json", str(out)])
        assert rc == 0
        artifact = json.loads(out.read_text())
        assert artifact["seeds"] == 2
        assert artifact["failures"] == []
        key = f"ring/{FUZZ_TARGETS[0]}/respawn"
        assert artifact["combinations"][key]["failures"] == 0
        assert "0 failure(s)" in capsys.readouterr().out


@pytest.mark.slow
class TestAcceptanceSweep:
    """The ISSUE's acceptance bar: every pattern x target x policy over
    >= 50 seeds, single- and (spot-checked) double-rank crashes."""

    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    @pytest.mark.parametrize("pattern", SOAK_NAMES)
    def test_soak_50_seeds(self, pattern, target):
        failures = chaos_soak(patterns=(pattern,), targets=(target,),
                              policies=POLICIES, seeds=range(50))
        assert failures == [], "\n".join(str(f) for f in failures)

    @pytest.mark.parametrize("pattern", SOAK_NAMES)
    def test_soak_double_crash_10_seeds(self, pattern):
        failures = chaos_soak(patterns=(pattern,), targets=FUZZ_TARGETS,
                              policies=POLICIES, seeds=range(10),
                              nfail=2)
        assert failures == [], "\n".join(str(f) for f in failures)
