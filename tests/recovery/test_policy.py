"""Recovery policy values: retry maths, config validation, shrink sizing."""

import pytest

from repro.netmodel import gemini_model
from repro.recovery import (
    POLICIES,
    RESPAWN,
    SHRINK,
    RecoveryConfig,
    RecoveryStats,
    RetryPolicy,
)
from repro.util.rng import stream_rng

_TP = gemini_model().transport("mpi2s")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RetryPolicy(rto=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.5)

    def test_rto_defaults_to_transport(self):
        assert RetryPolicy().rto_for(_TP) == _TP.retransmit_rto
        assert RetryPolicy(rto=0.25).rto_for(_TP) == 0.25

    def test_backoff_grows_attempt_cost(self):
        """Without jitter, each attempt's timeout doubles under the
        default backoff, on top of a constant wire re-crossing."""
        policy = RetryPolicy(backoff=2.0, jitter_frac=0.0)
        rng = stream_rng(0, 0)
        wire = _TP.wire_time(64)
        c0 = policy.attempt_cost(_TP, 64, 0, rng)
        c1 = policy.attempt_cost(_TP, 64, 1, rng)
        c2 = policy.attempt_cost(_TP, 64, 2, rng)
        assert c1 - wire == pytest.approx(2 * (c0 - wire))
        assert c2 - wire == pytest.approx(4 * (c0 - wire))

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff=1.0, jitter_frac=0.5)
        lo = policy.rto_for(_TP) + _TP.wire_time(8)
        hi = policy.rto_for(_TP) * 1.5 + _TP.wire_time(8)
        rng = stream_rng(3, 1)
        for _ in range(50):
            cost = policy.attempt_cost(_TP, 8, 0, rng)
            assert lo <= cost <= hi

    def test_worst_case_bounds_every_attempt_sum(self):
        policy = RetryPolicy(max_retries=3)
        rng = stream_rng(9, 2)
        total = sum(policy.attempt_cost(_TP, 128, a, rng)
                    for a in range(policy.max_retries))
        assert total <= policy.worst_case_delay(_TP, 128)

    def test_netmodel_retransmit_cost_backoff(self):
        """The raw transport helper applies the same exponential shape."""
        base = _TP.retransmit_cost(64)
        assert _TP.retransmit_cost(64, attempt=2, backoff=2.0) == \
            pytest.approx(_TP.retransmit_rto * 4 + _TP.wire_time(64))
        assert base == pytest.approx(_TP.retransmit_rto + _TP.wire_time(64))


class TestRecoveryConfig:
    def test_policy_must_be_known(self):
        for policy in POLICIES:
            assert RecoveryConfig(policy=policy).policy == policy
        with pytest.raises(ValueError):
            RecoveryConfig(policy="abort-on-failure")

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryConfig(detect_deadline=-1.0)
        with pytest.raises(ValueError):
            RecoveryConfig(restart_cost=-1.0)
        with pytest.raises(ValueError):
            RecoveryConfig(max_recoveries=-1)
        with pytest.raises(ValueError):
            RecoveryConfig(min_world=0)

    def test_per_target_retry_override(self):
        shmem_policy = RetryPolicy(max_retries=8)
        cfg = RecoveryConfig(retry_by_target={"shmem": shmem_policy})
        assert cfg.retry_for("shmem") is shmem_policy
        assert cfg.retry_for("mpi2s") is cfg.retry
        assert cfg.retry_for("mpi1s") is cfg.retry

    def test_shrink_world_unconstrained(self):
        assert RecoveryConfig().shrink_world(5) == 5

    def test_shrink_world_respects_validity(self):
        pow2 = RecoveryConfig(
            policy=SHRINK, valid_world=lambda n: (n & (n - 1)) == 0)
        assert pow2.shrink_world(7) == 4
        assert pow2.shrink_world(4) == 4
        assert pow2.shrink_world(1) == 1

    def test_shrink_world_respects_min_world(self):
        cfg = RecoveryConfig(min_world=3)
        assert cfg.shrink_world(3) == 3
        assert cfg.shrink_world(2) == 0   # no valid size left

    def test_defaults(self):
        cfg = RecoveryConfig()
        assert cfg.policy == RESPAWN
        assert cfg.checkpoint is True
        assert cfg.max_recoveries >= 1


class TestRecoveryStats:
    def test_summary_mentions_every_counter(self):
        stats = RecoveryStats(failures_detected=2, retries=7,
                              checkpoints_taken=12, restarts=2,
                              recovery_wall_s=0.5, final_world=4)
        text = stats.summary()
        for token in ("failures_detected=2", "retries=7",
                      "checkpoints=12", "restarts=2", "final_world=4"):
            assert token in text
