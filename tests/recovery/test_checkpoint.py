"""Checkpoint store semantics and the env-level checkpoint API."""

import numpy as np

from repro import mpi
from repro.netmodel import gemini_model
from repro.recovery import CheckpointStore, checkpoint, register_state, restore
from repro.sim import Engine

_MODEL = gemini_model()


class TestStore:
    def test_save_is_a_value_copy(self):
        store = CheckpointStore()
        arr = np.arange(4.0)
        store.save(0, 0, 1.0, {"arr": arr, "it": 3})
        arr[:] = -1.0
        cp = store.get(0, 0)
        assert cp is not None
        assert cp.state["arr"].tolist() == [0.0, 1.0, 2.0, 3.0]
        assert cp.state["it"] == 3
        assert cp.time == 1.0

    def test_get_missing_is_none(self):
        assert CheckpointStore().get(0, 0) is None

    def test_cuts_of_orders_ascending(self):
        store = CheckpointStore()
        for cut in (2, 0, 1):
            store.save(1, cut, float(cut), {})
        assert store.cuts_of(1) == [0, 1, 2]
        assert store.cuts_of(0) == []

    def test_latest_consistent_cut_is_common_maximum(self):
        store = CheckpointStore()
        for cut in range(3):
            store.save(0, cut, float(cut), {})
        for cut in range(2):           # rank 1 lags one cut behind
            store.save(1, cut, float(cut), {})
        assert store.latest_consistent_cut([0, 1]) == 1
        assert store.latest_consistent_cut([0]) == 2
        assert store.latest_consistent_cut([0, 1, 2]) == -1  # rank 2 bare

    def test_cut_time_is_latest_member_clock(self):
        store = CheckpointStore()
        store.save(0, 0, 1.5, {})
        store.save(1, 0, 2.5, {})
        assert store.cut_time(0, [0, 1]) == 2.5
        assert store.cut_time(0, [0]) == 1.5
        assert store.cut_time(7, [0, 1]) == 0.0

    def test_clear_drops_everything(self):
        store = CheckpointStore()
        store.save(0, 0, 0.0, {})
        store.clear()
        assert len(store) == 0
        assert store.latest_consistent_cut([0]) == -1


class TestEnvApiOutsideRecovery:
    def test_noop_without_recovery_context(self):
        """Recovery-aware programs run unchanged on a plain engine: the
        checkpoint API degrades to no-ops instead of requiring mode
        checks in application code."""
        def main(env):
            mpi.init(env, _MODEL)
            acc = np.zeros(2)
            assert restore(env) is None
            register_state(env, acc=acc)
            assert checkpoint(env, acc=acc) is None
            return acc.tolist()

        res = Engine(2).run(main)
        assert res.values == [[0.0, 0.0]] * 2
