"""Unit tests for shared utilities."""

import numpy as np
import pytest

from repro.util import (
    GiB,
    KiB,
    MiB,
    Table,
    fmt_bytes,
    fmt_time,
    format_series,
    msec,
    rank_rng,
    usec,
)


class TestUnits:
    def test_byte_constants(self):
        assert KiB == 1024
        assert MiB == 1024 ** 2
        assert GiB == 1024 ** 3

    def test_time_constants(self):
        assert usec == pytest.approx(1e-6)
        assert msec == pytest.approx(1e-3)

    @pytest.mark.parametrize("n,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (1536, "1.5 KiB"),
        (3 * MiB, "3 MiB"),
        (2 * GiB, "2 GiB"),
    ])
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    @pytest.mark.parametrize("t,expected", [
        (0.0, "0 s"),
        (2.5, "2.5 s"),
        (0.0015, "1.5 ms"),
        (1.5e-6, "1.5 us"),
        (3e-9, "3 ns"),
    ])
    def test_fmt_time(self, t, expected):
        assert fmt_time(t) == expected


class TestRankRng:
    def test_reproducible(self):
        a = rank_rng(42, 3).random(10)
        b = rank_rng(42, 3).random(10)
        assert np.array_equal(a, b)

    def test_ranks_get_distinct_streams(self):
        a = rank_rng(42, 0).random(10)
        b = rank_rng(42, 1).random(10)
        assert not np.array_equal(a, b)

    def test_seeds_get_distinct_streams(self):
        a = rank_rng(1, 0).random(10)
        b = rank_rng(2, 0).random(10)
        assert not np.array_equal(a, b)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            rank_rng(0, -1)


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["name", "value"])
        t.add_row(["x", 1.0])
        t.add_row(["longer-name", 123456.0])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "longer-name" in lines[3]
        # header/separator/rows all present
        assert len(lines) == 4

    def test_float_formatting(self):
        t = Table(["v"], float_fmt=".2f")
        t.add_row([3.14159])
        assert "3.14" in t.render()
        assert "3.142" not in t.render()

    def test_wrong_width_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])


class TestFormatSeries:
    def test_pairs(self):
        s = format_series("mpi", [33, 49], [0.01, 0.02])
        assert s == "mpi: (33, 0.01) (49, 0.02)"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1.0, 2.0])
