"""Cache keying and the on-disk result store.

The keying invariants are what make memoization *safe*: the display
path must not participate (rename hits), every analysis input must
(edit misses), and the analysis-version salt must (toolchain edit
invalidates everything).
"""

import json

from repro.core.clauses import Target
from repro.lintserve import (
    MemoryCache,
    ResultCache,
    UnitSpec,
    analysis_salt,
    unit_key,
)

SRC = "double buf[8];\n"


def _spec(path="a.c", source=SRC, nprocs=8, target=""):
    return UnitSpec(path=path, kind="structure", target=target,
                    source=source, nprocs=nprocs, extra_vars=(),
                    swept=tuple(t.value for t in Target))


def test_rename_hits_edit_misses():
    a, b = _spec(path="a.c"), _spec(path="b/renamed.c")
    assert a.payload() == b.payload()
    assert unit_key("structure", a.payload()) == \
        unit_key("structure", b.payload())
    edited = _spec(source=SRC + "\n")
    assert unit_key("structure", a.payload()) != \
        unit_key("structure", edited.payload())


def test_every_analysis_input_participates():
    base = unit_key("structure", _spec().payload())
    assert unit_key("structure", _spec(nprocs=4).payload()) != base
    assert unit_key("verify", _spec().payload()) != base


def test_salt_participates():
    payload = _spec().payload()
    assert unit_key("structure", payload, salt="v1") != \
        unit_key("structure", payload, salt="v2")
    # The default salt is the real analysis digest, stable in-process.
    assert unit_key("structure", payload) == \
        unit_key("structure", payload, salt=analysis_salt())


def test_disk_roundtrip_and_counters(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key("structure", _spec().payload())
    assert cache.get(key) is None
    cache.put(key, {"n": 1})
    assert cache.get(key) == {"n": 1}
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)
    assert cache.hit_rate == 0.5
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["root"] == str(tmp_path)
    # A second cache over the same root sees the entry (persistence).
    assert ResultCache(tmp_path).get(key) == {"n": 1}


def test_corrupt_entry_is_a_miss_and_deleted(tmp_path):
    cache = ResultCache(tmp_path)
    key = cache.key("structure", _spec().payload())
    cache.put(key, {"n": 1})
    path = cache._path(key)
    path.write_text("{truncated")
    assert cache.get(key) is None
    assert not path.exists()
    # Non-dict JSON is equally rejected.
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([1, 2]))
    assert cache.get(key) is None


def test_memory_cache_counters():
    cache = MemoryCache()
    key = cache.key("diffgen", ("src", 8))
    assert cache.get(key) is None
    cache.put(key, {"ok": True})
    assert cache.get(key) == {"ok": True}
    assert (cache.hits, cache.misses) == (1, 1)
