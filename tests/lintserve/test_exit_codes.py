"""Exit-code aggregation across the parallel/cached lint paths.

A single error in any shard must fail the merged run with exit 1, and
``--fail-on warning`` must widen aggregation over *all* merged
reports — same semantics as the sequential path, asserted here on the
``--jobs``/``--cache-dir`` code path.
"""

from pathlib import Path

import pytest

from repro.core.pragma.__main__ import main_lint

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "pragmas"
CLEAN = str(EXAMPLES / "ring.c")
RACY = str(EXAMPLES / "races" / "send_reuse.c")
SLOW = str(EXAMPLES / "slow" / "early_sync.c")


def test_clean_files_exit_zero(capsys):
    assert main_lint([CLEAN, "--jobs", "2"]) == 0
    capsys.readouterr()


def test_one_bad_shard_fails_the_merged_run(capsys):
    # The error sits in one unit of one file among several clean
    # shards; the aggregated exit must still be 1.
    assert main_lint([CLEAN, RACY, CLEAN, "--jobs", "2"]) == 1
    assert "CI041" in capsys.readouterr().out


def test_fail_on_warning_widens_across_shards(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path)]
    assert main_lint([CLEAN, SLOW, "--advise"] + cache) == 0
    capsys.readouterr()
    # Warm path must aggregate identically from cached units.
    assert main_lint([CLEAN, SLOW, "--advise",
                      "--fail-on", "warning"] + cache) == 1
    assert "CI10" in capsys.readouterr().out


def test_parse_error_fails_through_the_pool(tmp_path, capsys):
    broken = tmp_path / "broken.c"
    broken.write_text("#pragma comm_p2p sender(0) sender(1)\n")
    assert main_lint([CLEAN, str(broken), "--jobs", "2"]) == 1
    assert "CI000" in capsys.readouterr().out


def test_missing_file_is_usage_error(tmp_path, capsys):
    rc = main_lint([CLEAN, "/nonexistent/nope.c", "--jobs", "2",
                    "--cache-dir", str(tmp_path)])
    assert rc == 2
    assert "error" in capsys.readouterr().err


@pytest.mark.parametrize("extra", [[], ["--jobs", "2"]])
def test_sequential_and_parallel_agree_on_rc(extra, capsys):
    for argv, want in (([CLEAN], 0), ([RACY], 1), ([CLEAN, RACY], 1)):
        assert main_lint(argv + extra) == want
        capsys.readouterr()
