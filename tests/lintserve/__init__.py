"""Tests for the sharded, memoized lint service (repro.lintserve)."""
