"""Byte-identity of the sequential, sharded and memoized lint paths.

The service's core contract: ``--jobs 8`` and a warm ``--cache-dir``
rerun must render exactly the bytes the sequential path renders — over
the whole examples tree, including the seeded race counterexamples
(``races/``) and the minimized generated corpus (``generated/``). Plus
the incremental contract: editing one file re-executes exactly that
file's units.
"""

from pathlib import Path

import pytest

from repro.core.pragma.__main__ import main_lint
from repro.lintserve import ResultCache, lint_sources

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "pragmas"


@pytest.fixture(scope="module")
def example_files():
    files = sorted(str(p) for p in EXAMPLES.rglob("*.c"))
    assert any("/races/" in f for f in files)
    assert any("/generated/" in f for f in files)
    return files


def _run(argv, capsys):
    rc = main_lint(argv)
    return rc, capsys.readouterr().out


@pytest.mark.parametrize("fmt", ["json", "sarif"])
def test_parallel_and_cached_output_identical(example_files, tmp_path,
                                              capsys, fmt):
    base = example_files + ["--format", fmt]
    rc0, sequential = _run(base, capsys)
    rc1, parallel = _run(base + ["--jobs", "8"], capsys)
    cached = base + ["--jobs", "2", "--cache-dir", str(tmp_path / fmt)]
    rc2, cold = _run(cached, capsys)
    rc3, warm = _run(cached, capsys)
    assert rc0 == rc1 == rc2 == rc3 == 1  # bad/ + races/ carry errors
    assert sequential == parallel == cold == warm


def test_warm_run_is_fully_memoized(example_files, tmp_path, capsys):
    argv = example_files + ["--cache-dir", str(tmp_path),
                            "--stats-out", str(tmp_path / "stats.json")]
    main_lint(argv)
    capsys.readouterr()
    main_lint(argv)
    capsys.readouterr()
    import json
    stats = json.loads((tmp_path / "stats.json").read_text())
    assert stats["units_executed"] == 0
    assert stats["hit_rate"] == 1.0
    assert stats["units_total"] == len(example_files) * 4


def test_editing_one_file_relints_exactly_its_units(tmp_path):
    sources = [("a.c", "double a[8];\n"), ("b.c", "double b[8];\n"),
               ("c.c", "double c[8];\n")]
    cache = ResultCache(tmp_path)
    _, cold = lint_sources(sources, cache=cache)
    assert cold.units_executed == cold.units_total == 12

    edited = list(sources)
    edited[1] = ("b.c", "double b[16];\n")
    _, warm = lint_sources(edited, cache=ResultCache(tmp_path))
    # 4 units per file at the default three-target sweep: exactly
    # b.c's structure unit + its three verify units re-execute.
    assert warm.units_executed == 4
    assert warm.units_from_cache == 8

    _, again = lint_sources(edited, cache=ResultCache(tmp_path))
    assert again.units_executed == 0


def test_rename_does_not_invalidate(tmp_path):
    sources = [("old.c", "double a[8];\n")]
    lint_sources(sources, cache=ResultCache(tmp_path))
    reports, stats = lint_sources([("new/dir.c", "double a[8];\n")],
                                  cache=ResultCache(tmp_path))
    assert stats.units_executed == 0
    assert reports[0].path == "new/dir.c"
