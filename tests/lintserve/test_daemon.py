"""The warm unix-socket daemon: protocol, equivalence, lifecycle."""

import threading

import pytest

from repro.core.pragma.__main__ import main_lint
from repro.lintserve import LintDaemon, LintRequest, request_over_socket


@pytest.fixture
def ring_file(tmp_path):
    f = tmp_path / "ring.c"
    f.write_text(
        "double buf1[100];\n"
        "double buf2[100];\n"
        "int rank, nprocs;\n"
        "#pragma comm_p2p sender((rank-1+nprocs)%nprocs) "
        "receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)\n")
    return str(f)


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "lintd.sock")
    d = LintDaemon(sock)
    ready = threading.Event()
    thread = threading.Thread(target=d.serve_forever, daemon=True,
                              kwargs={"on_ready": ready.set})
    thread.start()
    assert ready.wait(timeout=10), "daemon never bound its socket"
    yield sock
    try:
        request_over_socket(sock, {"op": "shutdown"}, timeout=10)
    except OSError:
        pass
    thread.join(timeout=10)
    assert not thread.is_alive()


def test_ping_stats_and_unknown_op(daemon):
    pong = request_over_socket(daemon, {"op": "ping"})
    assert pong["ok"] and pong["requests_served"] == 0
    stats = request_over_socket(daemon, {"op": "stats"})
    assert stats["ok"] and stats["stats"]["cache"]["root"] == "<memory>"
    bad = request_over_socket(daemon, {"op": "frobnicate"})
    assert not bad["ok"] and "unknown op" in bad["error"]


def test_daemon_output_matches_local_run(daemon, ring_file, capsys):
    local_rc = main_lint([ring_file, "--format", "json"])
    local_out = capsys.readouterr().out
    request = LintRequest(inputs=[ring_file], format="json")
    response = request_over_socket(daemon, request.as_dict())
    assert response["ok"]
    assert response["exit_code"] == local_rc == 0
    assert response["output"] == local_out
    # Second identical request is served from the daemon's warm cache.
    again = request_over_socket(daemon, request.as_dict())
    assert again["output"] == local_out
    assert again["stats"]["units_executed"] == 0


def test_client_cli_round_trip(daemon, ring_file, capsys):
    local_rc = main_lint([ring_file])
    local_out = capsys.readouterr().out
    rc = main_lint([ring_file, "--socket", daemon])
    assert rc == local_rc
    assert capsys.readouterr().out == local_out


def test_relative_paths_resolve_against_client_cwd(daemon, ring_file,
                                                   tmp_path,
                                                   monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    rc = main_lint(["ring.c", "--socket", daemon])
    out = capsys.readouterr().out
    assert rc == 0
    # The report names the path exactly as typed, not resolved.
    assert out.startswith("== ring.c\n")


def test_missing_file_is_exit_2(daemon):
    request = LintRequest(inputs=["/nonexistent/nope.c"])
    response = request_over_socket(daemon, request.as_dict())
    assert response["exit_code"] == 2
    assert "error" in response["error"]


def test_second_daemon_on_live_socket_refuses(daemon):
    with pytest.raises(RuntimeError, match="already serving"):
        LintDaemon(daemon).serve_forever()


def test_client_without_daemon_is_exit_2(tmp_path, capsys):
    rc = main_lint(["whatever.c",
                    "--socket", str(tmp_path / "dead.sock")])
    assert rc == 2
    assert "error" in capsys.readouterr().err
