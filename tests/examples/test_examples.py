"""Every example must run clean from a fresh interpreter.

Examples are documentation that executes; these smoke tests keep them
from rotting. Each asserts on a line the example prints only when its
own internal verification passed.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..",
                        "examples")


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, \
        f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Listing 1: ring pattern" in out
    assert "consolidated into ONE" in out
    assert "1 MPI_Waitall" in out or "MPI_Waitall" in out


def test_wl_lsms_demo():
    out = run_example("wl_lsms_demo.py")
    assert "identical energies ✓" in out
    assert "speedup vs original" in out


def test_static_translation():
    out = run_example("static_translation.py")
    assert "MPI_Type_create_struct" in out
    assert "shmem_" in out
    assert "classified pattern: 'ring'" in out
    assert "matching issues: none" in out


def test_halo_stencil():
    out = run_example("halo_stencil.py")
    assert "max|parallel - serial|" in out
    assert "overlapped" in out


def test_stencil2d():
    out = run_example("stencil2d.py")
    assert "max error 0.00e+00" in out
    assert "communication matrix" in out


def test_fault_injection():
    out = run_example("fault_injection.py")
    assert "data identical on all 5 ranks" in out
    assert "<- stalled" in out
    assert "failed ranks: [2]" in out
    assert "passed" in out
