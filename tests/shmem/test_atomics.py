"""SHMEM atomic memory operations."""

import numpy as np
import pytest

from repro.errors import ShmemError, SimProcessError

from tests._spmd import shmem_run


class TestAtomicAdd:
    def test_concurrent_adds_accumulate(self):
        def prog(sh):
            counter = sh.malloc(1, np.int64)
            sh.barrier_all()
            sh.atomic_add(counter, 0, sh.my_pe + 1, pe=0)
            sh.barrier_all()
            return int(counter.data[0])

        res, _ = shmem_run(4, prog)
        assert res.values[0] == 1 + 2 + 3 + 4
        assert res.values[1] == 0  # only PE 0's mirror was targeted

    def test_out_of_range_index_rejected(self):
        def prog(sh):
            counter = sh.malloc(1, np.int64)
            sh.atomic_add(counter, 5, 1, pe=0)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(1, prog)
        assert isinstance(ei.value.original, ShmemError)


class TestFetchInc:
    def test_returns_preincrement_values(self):
        """Classic ticket counter: every PE gets a distinct ticket."""
        def prog(sh):
            counter = sh.malloc(1, np.int64)
            sh.barrier_all()
            ticket = int(sh.atomic_fetch_inc(counter, 0, pe=0))
            sh.barrier_all()
            return (ticket, int(counter.data[0]))

        res, _ = shmem_run(4, prog)
        tickets = sorted(t for t, _ in res.values)
        assert tickets == [0, 1, 2, 3]
        assert res.values[0][1] == 4

    def test_fetch_inc_blocks_for_round_trip(self):
        from repro.netmodel import uniform_model

        def prog(sh):
            counter = sh.malloc(1, np.int64)
            sh.barrier_all()
            t0 = sh.env.now
            sh.atomic_fetch_inc(counter, 0, pe=(sh.my_pe + 1) % 2)
            return sh.env.now - t0

        res, _ = shmem_run(2, prog, model=uniform_model())
        tp = uniform_model().transport("shmem")
        assert all(t >= tp.wire_time(8) for t in res.values)


class TestCompareSwap:
    def test_swap_when_equal(self):
        def prog(sh):
            cell = sh.malloc(1, np.int64)
            sh.barrier_all()
            if sh.my_pe == 1:
                old = sh.atomic_compare_swap(cell, 0, cond=0, value=42,
                                             pe=0)
                return int(old)
            sh.barrier_all() if False else None
            return None

        res, _ = shmem_run(2, prog)
        assert res.values[1] == 0

    def test_no_swap_when_unequal(self):
        def prog(sh):
            cell = sh.malloc(1, np.int64)
            cell.data[0] = 7 if sh.my_pe == 0 else 0
            sh.barrier_all()
            if sh.my_pe == 1:
                old = sh.atomic_compare_swap(cell, 0, cond=0, value=42,
                                             pe=0)
                sh.quiet()
                return int(old)
            return None

        res, _ = shmem_run(2, prog)
        assert res.values[1] == 7

    def test_lock_idiom(self):
        """A spin lock from compare-and-swap + wait_until."""
        def prog(sh):
            lock = sh.malloc(1, np.int64)
            shared = sh.malloc(1, np.float64)
            sh.barrier_all()
            # Acquire (0 -> my_pe+1), do the critical increment,
            # release (back to 0). Single-threaded-at-a-time virtual
            # execution makes this deterministic but still exercises
            # the retry path.
            while True:
                got = sh.atomic_compare_swap(lock, 0, cond=0,
                                             value=sh.my_pe + 1, pe=0)
                if got == 0:
                    break
                sh.wait_until(lock, 0, "eq", 0) if sh.my_pe == 0 \
                    else sh.env.compute(1e-7)
            sh.atomic_add(shared, 0, 1.0, pe=0)
            sh.atomic_compare_swap(lock, 0, cond=sh.my_pe + 1,
                                   value=0, pe=0)
            sh.barrier_all()
            return float(shared.data[0])

        res, _ = shmem_run(3, prog)
        assert res.values[0] == 3.0
