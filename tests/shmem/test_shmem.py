"""SHMEM semantics: symmetric heap, typed puts, completion calls."""

import numpy as np
import pytest

from repro.errors import ShmemError, SimProcessError, SymmetryError
from repro.netmodel import uniform_model
from repro.util.units import usec

from tests._spmd import shmem_run


class TestSymmetricHeap:
    def test_malloc_is_collective_and_mirrored(self):
        def prog(sh):
            arr = sh.malloc(4, np.float64)
            return (arr.sid, arr.shape)

        res, _ = shmem_run(3, prog)
        assert res.values == [(0, (4,)), (0, (4,)), (0, (4,))]

    def test_sequential_allocations_get_distinct_sids(self):
        def prog(sh):
            a = sh.malloc(2)
            b = sh.malloc(2)
            return (a.sid, b.sid)

        res, _ = shmem_run(2, prog)
        assert res.values[0] == (0, 1)

    def test_asymmetric_malloc_rejected(self):
        def prog(sh):
            sh.malloc(4 if sh.my_pe == 0 else 8)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(2, prog)
        assert isinstance(ei.value.original, SymmetryError)

    def test_put_to_non_symmetric_buffer_rejected(self):
        def prog(sh):
            local = np.zeros(4)  # plain array, not symmetric
            sh.put(local, np.ones(4), pe=0)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(1, prog)
        assert isinstance(ei.value.original, SymmetryError)


class TestPut:
    def test_put_writes_remote_mirror(self):
        def prog(sh):
            dst = sh.malloc(4)
            if sh.my_pe == 0:
                sh.put(dst, np.arange(4.0), pe=1)
                sh.quiet()
            sh.barrier_all()
            return dst.data.tolist()

        res, _ = shmem_run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0]
        assert res.values[0] == [0.0] * 4  # own mirror untouched

    def test_put_with_offset(self):
        def prog(sh):
            dst = sh.malloc(6)
            if sh.my_pe == 0:
                sh.put(dst, np.array([7.0]), pe=1, offset=5)
            sh.barrier_all()
            return dst.data.tolist()

        res, _ = shmem_run(2, prog)
        assert res.values[1][5] == 7.0

    def test_typed_put_size_enforced(self):
        def prog(sh):
            dst = sh.malloc(4, np.float64)
            sh.put_int(dst, np.zeros(2, dtype=np.int32), pe=0)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(1, prog)
        assert isinstance(ei.value.original, ShmemError)

    def test_typed_put_double(self):
        def prog(sh):
            dst = sh.malloc(3, np.float64)
            if sh.my_pe == 0:
                sh.put_double(dst, np.array([1.0, 2.0, 3.0]), pe=1)
            sh.barrier_all()
            return dst.data.tolist()

        res, _ = shmem_run(2, prog)
        assert res.values[1] == [1.0, 2.0, 3.0]

    def test_put64_on_int64(self):
        def prog(sh):
            dst = sh.malloc(2, np.int64)
            if sh.my_pe == 0:
                sh.put64(dst, np.array([5, 6], dtype=np.int64), pe=1)
            sh.barrier_all()
            return dst.data.tolist()

        res, _ = shmem_run(2, prog)
        assert res.values[1] == [5, 6]

    def test_putmem_reinterprets_bytes(self):
        def prog(sh):
            dst = sh.malloc(8, np.uint8)
            if sh.my_pe == 0:
                sh.putmem(dst, np.array([1.0]).view(np.uint8), pe=1)
            sh.barrier_all()
            return bytes(dst.data).hex()

        res, _ = shmem_run(2, prog)
        assert res.values[1] == np.array([1.0]).tobytes().hex()

    def test_put_out_of_range_rejected(self):
        def prog(sh):
            dst = sh.malloc(2)
            sh.put(dst, np.zeros(5), pe=0)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(1, prog)
        assert isinstance(ei.value.original, ShmemError)

    def test_bad_pe_rejected(self):
        def prog(sh):
            dst = sh.malloc(2)
            sh.put(dst, np.zeros(2), pe=9)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(2, prog)
        assert isinstance(ei.value.original, ShmemError)


class TestGet:
    def test_get_reads_remote(self):
        def prog(sh):
            src = sh.malloc(3)
            src.data[:] = float(sh.my_pe + 1)
            sh.barrier_all()
            out = np.zeros(3)
            sh.get(src, out, pe=(sh.my_pe + 1) % sh.n_pes)
            return out.tolist()

        res, _ = shmem_run(2, prog)
        assert res.values[0] == [2.0, 2.0, 2.0]
        assert res.values[1] == [1.0, 1.0, 1.0]

    def test_get_blocks_for_round_trip(self):
        def prog(sh):
            src = sh.malloc(1000)
            sh.barrier_all()
            t0 = sh.env.now
            out = np.zeros(1000)
            sh.get(src, out, pe=(sh.my_pe + 1) % sh.n_pes)
            return sh.env.now - t0

        res, _ = shmem_run(2, prog, model=uniform_model())
        tp = uniform_model().transport("shmem")
        assert res.values[0] >= tp.wire_time(8000)


class TestCompletion:
    def test_quiet_waits_for_put_visibility(self):
        def prog(sh):
            dst = sh.malloc(1000)
            if sh.my_pe == 0:
                t0 = sh.env.now
                sh.put(dst, np.ones(1000), pe=1)
                issue = sh.env.now - t0
                sh.quiet()
                total = sh.env.now - t0
                return (issue, total)
            return None

        res, _ = shmem_run(2, prog, model=uniform_model())
        issue, total = res.values[0]
        tp = uniform_model().transport("shmem")
        assert issue == pytest.approx(tp.send_overhead(8000))
        assert total >= tp.wire_time(8000)

    def test_quiet_without_pending_is_cheap(self):
        def prog(sh):
            t0 = sh.env.now
            sh.quiet()
            return sh.env.now - t0

        res, _ = shmem_run(1, prog, model=uniform_model())
        assert res.values[0] == pytest.approx(1 * usec)

    def test_barrier_all_synchronizes(self):
        def prog(sh):
            sh.env.compute(float(sh.my_pe))
            sh.barrier_all()
            return sh.env.now

        res, _ = shmem_run(3, prog, model=uniform_model())
        assert len(set(res.values)) == 1

    def test_group_barrier_subset(self):
        def prog(sh):
            if sh.my_pe in (0, 2):
                sh.env.compute(1.0 + sh.my_pe)
                sh.barrier([0, 2])
            return sh.env.now

        res, _ = shmem_run(3, prog)
        assert res.values[0] == res.values[2] == 3.0
        assert res.values[1] == 0.0

    def test_stats_count_shmem_traffic(self):
        def prog(sh):
            dst = sh.malloc(4)
            if sh.my_pe == 0:
                sh.put(dst, np.ones(4), pe=1)
                sh.quiet()
            sh.barrier_all()

        _, eng = shmem_run(2, prog)
        assert eng.stats.messages["shmem"] == 1
        assert eng.stats.bytes["shmem"] == 32
        assert eng.stats.sync_calls["quiet"] >= 1


class TestWaitUntil:
    def test_flag_notification(self):
        def prog(sh):
            data = sh.malloc(4)
            flag = sh.malloc(1, np.int64)
            if sh.my_pe == 0:
                sh.env.compute(2.0)
                sh.put(data, np.full(4, 5.0), pe=1)
                sh.fence()  # order data before flag
                sh.put64(flag, np.array([1], dtype=np.int64), pe=1)
                return None
            sh.wait_until(flag, 0, "eq", 1)
            return (sh.env.now >= 2.0, data.data.tolist())

        res, _ = shmem_run(2, prog, model=uniform_model())
        arrived_late, data = res.values[1]
        assert arrived_late
        assert data == [5.0] * 4

    def test_wait_until_already_satisfied(self):
        def prog(sh):
            flag = sh.malloc(1, np.int64)
            flag.data[0] = 3
            sh.wait_until(flag, 0, "ge", 2)
            return "ok"

        res, _ = shmem_run(1, prog)
        assert res.values[0] == "ok"

    def test_bad_op_rejected(self):
        def prog(sh):
            flag = sh.malloc(1, np.int64)
            sh.wait_until(flag, 0, "xor", 1)

        with pytest.raises(SimProcessError) as ei:
            shmem_run(1, prog)
        assert isinstance(ei.value.original, ShmemError)


class TestBroadcast:
    def test_root_data_everywhere(self):
        def prog(sh):
            buf = sh.malloc(3)
            if sh.my_pe == 1:
                buf.data[:] = [4.0, 5.0, 6.0]
            sh.broadcast(buf, root=1)
            return buf.data.tolist()

        res, _ = shmem_run(4, prog)
        assert all(v == [4.0, 5.0, 6.0] for v in res.values)
