"""Static translation: generated C/Fortran from annotated source."""

import pytest

from repro.core.codegen import generate_c, generate_fortran
from repro.core.pragma import parse_program

RING = """
double buf1[100];
double buf2[100];
#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
"""

REGION = """
double a[8]; double b[8]; double c[8]; double d[8];
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1)
{
#pragma comm_p2p sbuf(a) rbuf(b)
#pragma comm_p2p sbuf(c) rbuf(d)
}
"""

STRUCT = """
struct Atom {
    int jmt;
    double xstart;
    double evec[3];
};
struct Atom scalaratomdata[1];
#pragma comm_p2p sender(from_rank) receiver(to_rank) sendwhen(rank==from_rank) receivewhen(rank==to_rank) sbuf(scalaratomdata) rbuf(scalaratomdata) count(1)
"""

SHMEM_SRC = """
double src[16]; double dst[16];
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(src) rbuf(dst) target(TARGET_COMM_SHMEM)
"""

ONESIDED = """
double src[16]; double dst[16];
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(src) rbuf(dst) target(TARGET_COMM_MPI_1SIDE)
"""


class TestCMpi:
    def test_ring_emits_isend_irecv_waitall(self):
        out = generate_c(parse_program(RING))
        assert "MPI_Isend(buf1, 100, MPI_DOUBLE, (next)" in out
        assert "MPI_Irecv(buf2, 100, MPI_DOUBLE, (prev)" in out
        assert out.count("MPI_Waitall") == 1

    def test_region_consolidates_to_one_waitall(self):
        out = generate_c(parse_program(REGION))
        assert out.count("MPI_Isend") == 2
        assert out.count("MPI_Irecv") == 2
        assert out.count("MPI_Waitall") == 1

    def test_standalone_p2p_outside_region_syncs_alone(self):
        """A bare comm_p2p next to a region keeps its own sync point
        (the plan attaches the point to the P2PNode itself)."""
        src = """
double a[8]; double b[8]; double x[8]; double y[8];
#pragma comm_p2p sender(prev) receiver(next) sbuf(x) rbuf(y)
#pragma comm_parameters sender(rank-1) receiver(rank+1)
{
#pragma comm_p2p sbuf(a) rbuf(b)
}
"""
        out = generate_c(parse_program(src))
        assert out.count("MPI_Isend") == 2
        # One consolidated wait for the region, one for the standalone.
        assert out.count("MPI_Waitall") == 2
        assert "standalone" in out

    def test_when_guards_emitted(self):
        out = generate_c(parse_program(REGION))
        assert "if (rank%2==0) {" in out
        assert "if (rank%2==1) {" in out

    def test_struct_generates_derived_type_once(self):
        out = generate_c(parse_program(STRUCT))
        assert "MPI_Type_create_struct" in out
        assert "MPI_Type_commit" in out
        assert "__cd_type_Atom" in out
        # displacement/blocklength arrays from the composite layout:
        # int at 0, double at 8, evec[3] at 16.
        assert "{0, 8, 16}" in out
        assert "{1, 1, 3}" in out
        assert "{MPI_INT, MPI_DOUBLE, MPI_DOUBLE}" in out

    def test_struct_type_reused_on_second_instance(self):
        src = STRUCT + """
#pragma comm_p2p sender(from_rank) receiver(to_rank) sendwhen(rank==from_rank) receivewhen(rank==to_rank) sbuf(scalaratomdata) rbuf(scalaratomdata) count(1)
"""
        out = generate_c(parse_program(src))
        assert out.count("MPI_Type_create_struct") == 1
        assert "reused" in out

    def test_shmem_typed_put(self):
        out = generate_c(parse_program(SHMEM_SRC))
        assert "shmem_double_put(dst, src, 16, (1));" in out
        assert "shmem_quiet();" in out
        assert "MPI_Isend" not in out

    def test_mpi1s_put_and_fence(self):
        out = generate_c(parse_program(ONESIDED))
        assert "MPI_Put(src, 16, MPI_DOUBLE, (1)" in out
        assert "MPI_Win_fence" in out

    def test_count_inferred_from_smallest_array(self):
        src = """
        double big[100]; double small[10];
        #pragma comm_p2p sender(0) receiver(1) sbuf(big) rbuf(small)
        """
        out = generate_c(parse_program(src))
        assert "MPI_Isend(big, 10, MPI_DOUBLE" in out

    def test_raw_code_passes_through(self):
        out = generate_c(parse_program(RING))
        assert "double buf1[100];" in out

    def test_buffer_lists_emit_one_call_each(self):
        src = """
        double vr[32]; double rhotot[32];
        #pragma comm_p2p sender(0) receiver(1) sbuf(vr,rhotot) rbuf(vr,rhotot)
        """
        out = generate_c(parse_program(src))
        assert out.count("MPI_Isend") == 2
        assert out.count("MPI_Irecv") == 2
        assert out.count("MPI_Waitall") == 1

    def test_generated_tags_distinct_per_instance(self):
        out = generate_c(parse_program(REGION))
        # two instances, tags 0 and 1
        assert ", 0, MPI_COMM_WORLD" in out
        assert ", 1, MPI_COMM_WORLD" in out


class TestFortran:
    def test_ring_emits_fortran_calls(self):
        out = generate_fortran(parse_program(RING))
        assert "call MPI_ISEND(buf1, 100, MPI_DOUBLE_PRECISION" in out
        assert "call MPI_IRECV(buf2, 100, MPI_DOUBLE_PRECISION" in out
        assert "subroutine cd_translated" in out
        assert "end subroutine" in out

    def test_region_waitall(self):
        out = generate_fortran(parse_program(REGION))
        assert out.count("call MPI_WAITALL") == 1

    def test_shmem_target(self):
        out = generate_fortran(parse_program(SHMEM_SRC + """
#pragma comm_parameters sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) target(TARGET_COMM_SHMEM)
{
#pragma comm_p2p sbuf(src) rbuf(dst)
}
"""))
        assert "call shmem_quiet()" in out

    def test_c_code_carried_as_comments(self):
        out = generate_fortran(parse_program(RING))
        assert "! C: double buf1[100];" in out

    def test_generator_does_not_mutate_ir(self):
        prog = parse_program(REGION)
        before = len(prog.all_p2p()[0].clauses.exprs)
        generate_fortran(prog)
        assert len(prog.all_p2p()[0].clauses.exprs) == before
