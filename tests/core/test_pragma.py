"""The static front end on the paper's listing shapes."""

import pytest

from repro.core.clauses import SyncPlacement, Target
from repro.core.ir import P2PNode, ParamRegionNode, RawCode
from repro.core.pragma import parse_program, scan_declarations
from repro.dtypes.composite import CompositeType
from repro.errors import CompositeTypeError, PragmaSyntaxError

LISTING1 = """
double buf1[100];
double buf2[100];
int rank, nprocs, prev, next;
prev = (rank-1+nprocs)%nprocs;
next = (rank+1)%nprocs;
#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
"""

LISTING2 = """
double buf1[10];
double buf2[10];
#pragma comm_p2p sbuf(buf1) rbuf(buf2) sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1)
"""

LISTING3 = """
double buf1[64];
double buf2[64];
int p, n, size;
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1) count(size) max_comm_iter(n) place_sync(END_PARAM_REGION)
{
for(p=0; p < n; p++)
#pragma comm_p2p sbuf(&buf1[p]) rbuf(&buf2[p])
}
"""


class TestDeclarations:
    def test_scalar_array_pointer(self):
        src = "double a; int b[10]; double *p; float c[3], d;"
        _, decls = scan_declarations(src)
        assert decls["a"].length is None and not decls["a"].is_pointer
        assert decls["b"].length == 10
        assert decls["p"].is_pointer
        assert decls["c"].length == 3
        assert decls["d"].length is None

    def test_struct_definition(self):
        src = """
        struct Atom {
            int jmt;
            double xstart;
            char header[80];
            double evec[3];
        };
        struct Atom atom;
        """
        structs, decls = scan_declarations(src)
        assert "Atom" in structs
        atom = structs["Atom"]
        assert isinstance(atom, CompositeType)
        assert len(atom.fields) == 4
        assert decls["atom"].ctype is atom

    def test_typedef_struct(self):
        src = "typedef struct { double x; int n; } Spin;\nSpin s[4];"
        structs, decls = scan_declarations(src)
        assert "Spin" in structs
        assert decls["s"].length == 4

    def test_nested_struct_by_value(self):
        src = """
        struct Inner { double x; };
        struct Outer { int n; Inner i; };
        """
        structs, _ = scan_declarations(src)
        assert structs["Outer"].triples().blocklengths == (1, 1)

    def test_pointer_in_struct_rejected(self):
        src = "struct Bad { double *p; };"
        with pytest.raises(CompositeTypeError, match="prohibited"):
            scan_declarations(src)


class TestParserListings:
    def test_listing1_standalone_p2p(self):
        prog = parse_program(LISTING1)
        p2ps = prog.all_p2p()
        assert len(p2ps) == 1
        cl = p2ps[0].clauses
        assert cl.exprs["sender"] == "prev"
        assert cl.exprs["receiver"] == "next"
        assert cl.sbuf == ["buf1"]
        assert cl.rbuf == ["buf2"]
        assert not prog.regions()

    def test_listing2_when_clauses(self):
        prog = parse_program(LISTING2)
        cl = prog.all_p2p()[0].clauses
        assert cl.exprs["sendwhen"] == "rank%2==0"
        assert cl.exprs["receivewhen"] == "rank%2==1"

    def test_listing3_region_with_loop(self):
        prog = parse_program(LISTING3)
        regions = prog.regions()
        assert len(regions) == 1
        region = regions[0]
        assert region.place_sync is SyncPlacement.END_PARAM_REGION
        assert region.clauses.exprs["max_comm_iter"] == "n"
        inner = region.p2p_instances()
        assert len(inner) == 1
        assert inner[0].clauses.sbuf == ["&buf1[p]"]
        # The for header is preserved as raw code inside the region.
        raw = [n for n in region.body if isinstance(n, RawCode)]
        assert any("for" in ln for n in raw for ln in n.lines)

    def test_raw_code_preserved_around_pragmas(self):
        prog = parse_program(LISTING1)
        raw = [n for n in prog.nodes if isinstance(n, RawCode)]
        text = "\n".join(ln for n in raw for ln in n.lines)
        assert "prev = (rank-1+nprocs)%nprocs;" in text

    def test_multiline_pragma_clauses(self):
        src = """
        double a[4]; double b[4];
        #pragma comm_p2p sender(rank-1)
            receiver(rank+1)
            sbuf(a) rbuf(b)
        """
        prog = parse_program(src)
        cl = prog.all_p2p()[0].clauses
        assert cl.exprs["receiver"] == "rank+1"

    def test_p2p_with_body_block(self):
        src = """
        double a[4]; double b[4];
        #pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b)
        {
            compute(x);
        }
        """
        prog = parse_program(src)
        node = prog.all_p2p()[0]
        assert len(node.body) == 1
        assert "compute(x);" in node.body[0].lines[0]

    def test_target_clause_parsed(self):
        src = """
        double a[4]; double b[4];
        #pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b) target(TARGET_COMM_SHMEM)
        """
        prog = parse_program(src)
        assert prog.all_p2p()[0].clauses.target is Target.SHMEM

    def test_buffer_lists(self):
        src = """
        double vr[64]; double rhotot[64];
        #pragma comm_p2p sender(0) receiver(1) sbuf(vr,rhotot) rbuf(vr, rhotot)
        """
        prog = parse_program(src)
        cl = prog.all_p2p()[0].clauses
        assert cl.sbuf == ["vr", "rhotot"]
        assert cl.rbuf == ["vr", "rhotot"]

    def test_unknown_target_rejected(self):
        src = "#pragma comm_p2p target(TARGET_COMM_PVM)"
        with pytest.raises(PragmaSyntaxError, match="target"):
            parse_program(src)

    def test_params_only_clause_on_p2p_rejected(self):
        src = "#pragma comm_p2p place_sync(END_PARAM_REGION)"
        with pytest.raises(PragmaSyntaxError, match="comm_parameters"):
            parse_program(src)

    def test_unpaired_when_clause_rejected(self):
        src = "#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b) sendwhen(rank==0)"
        with pytest.raises(PragmaSyntaxError, match="both"):
            parse_program(src)

    def test_duplicate_clause_rejected(self):
        src = "#pragma comm_p2p sender(0) sender(1)"
        with pytest.raises(PragmaSyntaxError, match="duplicate"):
            parse_program(src)

    def test_zero_count_rejected(self):
        src = "#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b) count(0)"
        with pytest.raises(PragmaSyntaxError, match="positive"):
            parse_program(src)

    def test_negative_count_rejected(self):
        src = "#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b) count(-2)"
        with pytest.raises(PragmaSyntaxError, match="positive"):
            parse_program(src)

    def test_symbolic_count_still_allowed(self):
        src = ("double a[4]; double b[4];\n"
               "#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b) "
               "count(n)")
        prog = parse_program(src)
        assert prog.all_p2p()[0].clauses.exprs["count"] == "n"

    def test_zero_max_comm_iter_rejected(self):
        src = ("#pragma comm_parameters max_comm_iter(0)\n"
               "{\n"
               "#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b)\n"
               "}")
        with pytest.raises(PragmaSyntaxError, match="positive"):
            parse_program(src)

    def test_empty_buffer_list_reports_line(self):
        src = ("double a[4];\n"
               "\n"
               "#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(a,)")
        with pytest.raises(PragmaSyntaxError,
                           match="empty buffer name") as exc:
            parse_program(src)
        assert exc.value.line == 3

    def test_duplicate_clause_reports_line(self):
        src = "\n#pragma comm_p2p sender(0) sender(1)"
        with pytest.raises(PragmaSyntaxError, match="duplicate") as exc:
            parse_program(src)
        assert exc.value.line == 2

    def test_other_pragmas_pass_through(self):
        src = """
        #pragma omp parallel for
        for (i = 0; i < n; i++) x[i] = 0;
        """
        prog = parse_program(src)
        assert not prog.all_p2p()
        text = "\n".join(ln for n in prog.nodes if isinstance(n, RawCode)
                         for ln in n.lines)
        assert "#pragma omp parallel" in text

    def test_adjacent_regions_detected(self):
        src = """
        double a[2]; double b[2]; double c[2]; double d[2];
        #pragma comm_parameters sender(0) receiver(1)
        {
        #pragma comm_p2p sbuf(a) rbuf(b)
        }
        #pragma comm_parameters sender(0) receiver(1)
        {
        #pragma comm_p2p sbuf(c) rbuf(d)
        }
        """
        prog = parse_program(src)
        chains = prog.adjacent_region_chains()
        assert len(chains) == 1
        assert len(chains[0]) == 2
