"""Compile-check the generated C with a real compiler.

The strongest well-formedness test a code generator can get without a
full MPI installation: wrap the translator's output in a function,
provide stub ``mpi.h``/``shmem.h`` declarations, and run
``gcc -fsyntax-only -Wall``. Skipped where no ``gcc`` is available.
"""

import shutil
import subprocess

import pytest

from repro.core.clauses import Target
from repro.core.codegen import generate_c
from repro.core.pragma import parse_program

gcc = shutil.which("gcc")
pytestmark = pytest.mark.skipif(gcc is None, reason="gcc not available")

STUB_HEADERS = """\
/* Minimal MPI/SHMEM declarations for syntax-checking generated code. */
typedef int MPI_Datatype;
typedef int MPI_Request;
typedef int MPI_Win;
typedef long MPI_Aint;
typedef struct { int src; } MPI_Status;
#define MPI_DATATYPE_NULL ((MPI_Datatype)0)
#define MPI_COMM_WORLD 0
#define MPI_STATUSES_IGNORE ((MPI_Status *)0)
#define MPI_CHAR 1
#define MPI_BYTE 2
#define MPI_INT 3
#define MPI_LONG 4
#define MPI_FLOAT 5
#define MPI_DOUBLE 6
int MPI_Isend(const void *, int, MPI_Datatype, int, int, int,
              MPI_Request *);
int MPI_Irecv(void *, int, MPI_Datatype, int, int, int, MPI_Request *);
int MPI_Waitall(int, MPI_Request *, MPI_Status *);
int MPI_Type_create_struct(int, const int *, const MPI_Aint *,
                           const MPI_Datatype *, MPI_Datatype *);
int MPI_Type_commit(MPI_Datatype *);
int MPI_Put(const void *, int, MPI_Datatype, int, MPI_Aint, int,
            MPI_Datatype, MPI_Win);
int MPI_Win_fence(int, MPI_Win);
void shmem_double_put(double *, const double *, unsigned long, int);
void shmem_float_put(float *, const float *, unsigned long, int);
void shmem_put32(void *, const void *, unsigned long, int);
void shmem_put64(void *, const void *, unsigned long, int);
void shmem_putmem(void *, const void *, unsigned long, int);
void shmem_quiet(void);
void shmem_barrier_all(void);
"""

RING = """
double buf1[100];
double buf2[100];
int prev, next;
prev = (rank-1+nprocs)%nprocs;
next = (rank+1)%nprocs;
#pragma comm_p2p sender(prev) receiver(next) sbuf(buf1) rbuf(buf2)
"""

REGION = """
double a[8]; double b[8]; double c[8]; double d[8];
#pragma comm_parameters sender(rank-1) receiver(rank+1) sendwhen(rank%2==0) receivewhen(rank%2==1)
{
#pragma comm_p2p sbuf(a) rbuf(b)
#pragma comm_p2p sbuf(c) rbuf(d)
}
"""

STRUCT = """
struct Atom {
    int jmt;
    double xstart;
    double evec[3];
};
struct Atom scalaratomdata[1];
int from_rank, to_rank;
#pragma comm_p2p sender(from_rank) receiver(to_rank) sendwhen(rank==from_rank) receivewhen(rank==to_rank) sbuf(scalaratomdata) rbuf(scalaratomdata) count(1)
"""

ONESIDED = """
double src[16]; double dst[16];
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==1) sbuf(src) rbuf(dst) target(TARGET_COMM_MPI_1SIDE)
"""


def _compiles(tmp_path, generated: str, extra_decls: str = "",
              signature: str = "int rank, int nprocs") -> None:
    src = (STUB_HEADERS + extra_decls
           + f"void cd_translated({signature}) {{\n"
           + generated + "}\n")
    f = tmp_path / "generated.c"
    f.write_text(src)
    proc = subprocess.run(
        [gcc, "-fsyntax-only", "-Wall", str(f)],
        capture_output=True, text=True, timeout=60)
    assert proc.returncode == 0, \
        f"generated C does not compile:\n{proc.stderr}\n---\n{src}"


@pytest.mark.parametrize("snippet", [RING, REGION, ONESIDED],
                         ids=["ring", "region", "onesided"])
def test_mpi_translation_compiles(tmp_path, snippet):
    _compiles(tmp_path, generate_c(parse_program(snippet)))


def test_struct_translation_compiles(tmp_path):
    # The struct definition must be visible to the compiler: the
    # pragma front end keeps it in the raw code, inside our wrapper
    # function, which C allows for local struct definitions.
    _compiles(tmp_path, generate_c(parse_program(STRUCT)))


@pytest.mark.parametrize("snippet", [RING, REGION],
                         ids=["ring", "region"])
def test_shmem_translation_compiles(tmp_path, snippet):
    out = generate_c(parse_program(snippet),
                     default_target=Target.SHMEM)
    _compiles(tmp_path, out)


def test_listing5_translation_compiles(tmp_path):
    # The listing declares its own `rank` etc.; wrap with no params.
    from repro.bench.listings import LISTING5_ANNOTATED
    _compiles(tmp_path, generate_c(parse_program(LISTING5_ANNOTATED)),
              signature="void")


def test_listing7_translation_compiles(tmp_path):
    from tests.core.test_listing7_static import LISTING7
    extra = ("void calculateCoreState(int, int, int, int, int);\n"
             "static int comm, lsms, local, core_states_done;\n")
    _compiles(tmp_path, generate_c(parse_program(LISTING7)), extra,
              signature="void")
