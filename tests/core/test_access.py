"""Symbolic byte-interval derivation (the CI04x evidence substrate)."""

from repro.core.analysis.access import (
    ByteInterval,
    buffer_interval,
    element_size_of,
    widened_interval,
    write_interval,
)
from repro.core.pragma import parse_program

DECLS = parse_program("""
double a[16];
float f[8];
int n[4];
double *p;
""").decls


class TestByteInterval:
    def test_overlap_is_common_range(self):
        got = ByteInterval(0, 64).overlap(ByteInterval(32, 128))
        assert got == ByteInterval(32, 64)

    def test_disjoint_is_none(self):
        assert ByteInterval(0, 32).overlap(ByteInterval(32, 64)) is None
        assert ByteInterval(64, 96).overlap(ByteInterval(0, 64)) is None

    def test_unknown_extent_overlaps(self):
        got = ByteInterval(0, None).overlap(ByteInterval(8, 16))
        assert got == ByteInterval(8, 16)

    def test_widened_is_sticky_through_overlap(self):
        got = ByteInterval(0, 64, widened=True).overlap(ByteInterval(0, 8))
        assert got is not None and got.widened

    def test_describe_spells_bytes_and_widening(self):
        assert ByteInterval(8, 24).describe() == "bytes [8, 24)"
        assert ByteInterval(0, None).describe() == "bytes [0, ...)"
        assert "widened" in ByteInterval(0, 8, widened=True).describe()


class TestElementSize:
    def test_declared_storage_size(self):
        assert element_size_of(DECLS["a"]) == 8
        assert element_size_of(DECLS["f"]) == 4
        assert element_size_of(DECLS["n"]) == 4

    def test_undeclared_defaults_to_one(self):
        assert element_size_of(None) == 1


class TestBufferInterval:
    def test_plain_name_with_count(self):
        got = buffer_interval("a", "4", DECLS, {})
        assert got == ByteInterval(0, 32)

    def test_subscript_offset(self):
        got = buffer_interval("&a[2]", "4", DECLS, {})
        assert got == ByteInterval(16, 48)

    def test_variables_bind_in_offset_and_count(self):
        got = buffer_interval("&a[p]", "n", DECLS, {"p": 1, "n": 2})
        assert got == ByteInterval(8, 24)

    def test_unevaluable_offset_widens_to_allocation(self):
        got = buffer_interval("&a[loopvar]", "4", DECLS, {})
        assert got == ByteInterval(0, 128, widened=True)

    def test_missing_count_widens(self):
        got = buffer_interval("a", None, DECLS, {})
        assert got.widened and got == ByteInterval(0, 128, widened=True)

    def test_pointer_widens_with_unknown_extent(self):
        got = buffer_interval("p", None, DECLS, {})
        assert got == ByteInterval(0, None, widened=True)

    def test_oversized_count_clamped_to_allocation(self):
        got = buffer_interval("&a[8]", "100", DECLS, {})
        assert got == ByteInterval(64, 128)

    def test_widened_interval_covers_declaration(self):
        assert widened_interval(DECLS["f"]) == ByteInterval(
            0, 32, widened=True)


class TestWriteInterval:
    def test_evaluable_index_pins_one_element(self):
        assert write_interval("a", "3", DECLS, {}) == ByteInterval(24, 32)

    def test_index_expression_uses_bindings(self):
        got = write_interval("a", "rank+1", DECLS, {"rank": 2})
        assert got == ByteInterval(24, 32)

    def test_unevaluable_index_widens(self):
        got = write_interval("a", "i", DECLS, {})
        assert got == ByteInterval(0, 128, widened=True)

    def test_out_of_range_index_clamped(self):
        assert write_interval("a", "99", DECLS, {}) == ByteInterval(128, 128)
