"""The CI04x static race pass over the seeded counterexamples.

``examples/pragmas/races/`` holds one minimized program per CI04x
code; each must be refuted with byte-range evidence. The same files
are the positive half of the differential cross-check in
``tests/sim/test_sanitizer.py``.
"""

from pathlib import Path

import pytest

from repro.core.analysis import lint_program
from repro.core.analysis.codes import RACE_CODES
from repro.core.pragma import parse_program

RACES_DIR = (Path(__file__).resolve().parents[2]
             / "examples" / "pragmas" / "races")

#: file stem -> the CI04x code its directives must be refuted with.
EXPECTED = {
    "halo_corner_update": "CI040",
    "send_reuse": "CI041",
    "sendrecv_alias": "CI042",
    "symheap_collision": "CI043",
}


def lint_example(stem):
    source = (RACES_DIR / f"{stem}.c").read_text()
    return lint_program(parse_program(source), nprocs=8,
                        path=f"races/{stem}.c")


class TestSeededRaces:
    def test_every_race_code_has_a_seeded_example(self):
        assert set(EXPECTED.values()) == set(RACE_CODES)
        for stem in EXPECTED:
            assert (RACES_DIR / f"{stem}.c").is_file()

    @pytest.mark.parametrize("stem,code", sorted(EXPECTED.items()))
    def test_example_is_refuted_with_its_code(self, stem, code):
        report = lint_example(stem)
        findings = [d for d in report.errors if d.code == code]
        assert findings, report.render()

    @pytest.mark.parametrize("stem", sorted(EXPECTED))
    def test_evidence_carries_byte_ranges_and_ranks(self, stem):
        report = lint_example(stem)
        for d in report.errors:
            if d.code in RACE_CODES:
                assert "bytes [" in d.message
                assert "rank" in d.message

    def test_clean_ring_has_no_race_findings(self):
        source = """
double a[16]; double b[16];
int rank, nprocs;
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs)
{
#pragma comm_p2p sbuf(a) rbuf(b)
}
"""
        report = lint_program(parse_program(source), nprocs=8)
        assert not [d for d in report.diagnostics if d.code in RACE_CODES]

    def test_widened_write_demotes_to_warning(self):
        # An unevaluable write index widens the byte interval, so the
        # CI041 finding is a warning (possible race), not a proof.
        source = """
double out[16]; double in[16];
int rank, nprocs;
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs)
{
#pragma comm_p2p sbuf(out) rbuf(in)
  out[i] = 0.0;
#pragma end_adjacent
}
"""
        report = lint_program(parse_program(source), nprocs=8)
        races = [d for d in report.diagnostics if d.code == "CI041"]
        assert races and all(d.severity == "warning" for d in races)
        assert not report.errors
        assert all("widened" in d.message for d in races)
