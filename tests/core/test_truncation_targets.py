"""Truncation and datatype-signature mismatch across all three
lowering targets.

The directive layer promises the same semantics whatever the lowering;
that includes the *failure* semantics when buffers disagree: an
oversized payload must surface a truncation-class error, and mismatched
element types must be rejected before any transfer is generated.
"""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.core import comm_p2p
from repro.errors import (
    ClauseError,
    ShmemError,
    SimProcessError,
    TruncationError,
)
from repro.netmodel import zero_model
from repro.sim import Engine

ALL_TARGETS = ("TARGET_COMM_MPI_2SIDE", "TARGET_COMM_MPI_1SIDE",
               "TARGET_COMM_SHMEM")


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        mpi.init(env, model)
        return fn(env)

    return eng.run(main), eng


def _oversized_prog(env, target):
    """Sender pushes 8 elements; the receiver's buffer holds 4.

    SPMD rank-dependent shapes make the mismatch invisible to each
    rank's local count inference — exactly how real truncation bugs
    arise."""
    src = np.arange(8.0)
    dst = np.zeros(8 if env.rank == 0 else 4)
    count = {"count": 8} if env.rank == 0 else {}  # receiver infers 4
    with comm_p2p(env, sender=0, receiver=1,
                  sendwhen=env.rank == 0, receivewhen=env.rank == 1,
                  sbuf=src, rbuf=dst, target=target, **count):
        pass
    return dst.tolist()


class TestTruncation:
    def test_mpi2s_truncation_detected_at_delivery(self):
        with pytest.raises(SimProcessError) as ei:
            run(2, lambda env: _oversized_prog(
                env, "TARGET_COMM_MPI_2SIDE"))
        assert isinstance(ei.value.original, TruncationError)
        assert "truncated" in str(ei.value.original)

    def test_mpi1s_truncation_detected_at_put(self):
        with pytest.raises(SimProcessError) as ei:
            run(2, lambda env: _oversized_prog(
                env, "TARGET_COMM_MPI_1SIDE"))
        assert isinstance(ei.value.original, TruncationError)
        assert "exceeds the exposed" in str(ei.value.original)

    def test_shmem_overflowing_put_rejected(self):
        """The SHMEM lowering cannot reach rank-asymmetric rbuf sizes —
        the symmetric heap forces identical collective allocations — so
        its truncation guard lives at the put itself."""
        def prog(env):
            sh = shmem.init(env)
            dst = sh.malloc(4, np.float64)
            if env.rank == 0:
                sh.put(dst, np.arange(8.0), 1)
            return None

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ShmemError)
        assert "exceeds the 4-element symmetric buffer" in str(
            ei.value.original)

    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_explicit_count_overflow_rejected_preflight(self, target):
        """count larger than a listed buffer is a clause error on every
        target, caught before any traffic is generated."""
        def prog(env):
            sh = shmem.init(env)
            dst = (sh.malloc(4, np.float64)
                   if target == "TARGET_COMM_SHMEM" else np.zeros(4))
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=np.arange(8.0), rbuf=dst, count=8,
                          target=target):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)
        assert "count 8 exceeds" in str(ei.value.original)


class TestSignatureMismatch:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_element_size_mismatch_rejected(self, target):
        """float64 sbuf against a float32 rbuf: the generated transfer
        would reinterpret elements — every lowering must refuse."""
        def prog(env):
            sh = shmem.init(env)
            dst = (sh.malloc(5, np.float32)
                   if target == "TARGET_COMM_SHMEM"
                   else np.zeros(5, np.float32))
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=np.arange(5.0), rbuf=dst, target=target):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)
        assert "element sizes differ" in str(ei.value.original)

    def test_shmem_typed_call_signature_enforced(self):
        """The typed-put family embeds the datatype in the call name
        (Section III-A); a mismatched source must be rejected."""
        def prog(env):
            sh = shmem.init(env)
            dst = sh.malloc(3, np.float64)
            if env.rank == 0:
                sh.put_double(dst, np.zeros(3, np.float32), 1)
            return None

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ShmemError)
        assert "does not match the call's 8-byte type" in str(
            ei.value.original)
