"""Whole-program static verification: happens-before proofs."""

import pytest

from repro.core.analysis.codes import DEADLOCK_CODES
from repro.core.analysis.verify import (
    WEAKENINGS,
    verify_program,
)
from repro.core.pragma import parse_program

RING = """
double out[8];
double inb[8];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(out) rbuf(inb)
{
}
consume(inb);
"""

#: Region one only receives; the matching sends happen in region two,
#: after region one's end-of-region wait — a true cross-rank cycle.
CYCLE = """
double x[8];
double y[8];
int rank, nprocs;
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(0) receivewhen(1)
{
}
}
mid();
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(1) receivewhen(0)
{
}
}
"""

#: Rank 2 expects a message from rank 0, but rank 0's sendwhen routes
#: its only send to rank 1 — the wait can never be satisfied.
NEVER_SENT = """
double a[4];
double b[4];
int rank, nprocs;
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(rank==2) sbuf(a) rbuf(b)
"""

#: A send nobody exposes/receives: nobody's receivewhen is true. On a
#: one-sided target the put has no exposure epoch (deadlock); on the
#: eager two-sided target it is only a matching warning.
NO_EXPOSURE = """
double a[4];
double b[4];
int rank, nprocs;
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(0) sbuf(a) rbuf(b)
"""

#: Raw code between two directives of one region reads the first
#: directive's rbuf before the consolidated region-end sync.
EARLY_READ = """
double a[4]; double b[4]; double c[4]; double d[4];
int rank, nprocs;
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs)
{
#pragma comm_p2p sbuf(a) rbuf(b)
    peek(b);
#pragma comm_p2p sbuf(c) rbuf(d)
}
"""

#: Two END_ADJ regions share one sync group, but the second region's
#: directive reuses the first's rbuf as its sbuf — the executor must
#: downgrade the plan with a forced flush and report it.
ADJ_ALIAS = """
double a[4]; double b[4]; double c[4];
int rank, nprocs;
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) place_sync(END_ADJ_PARAM_REGIONS)
{
#pragma comm_p2p sbuf(a) rbuf(b)
}
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) place_sync(END_ADJ_PARAM_REGIONS)
{
#pragma comm_p2p sbuf(b) rbuf(c)
}
"""

#: The paper's Listing-7 shape: the receiver is a loop-carried program
#: variable and the region declares max_comm_iter. One unrolled
#: snapshot (it=1) starves ranks 2..n-1, but a later iteration may
#: serve them — so the missing-message finding must be a warning, not
#: a deadlock proof.
LOOP_CARRIED = """
double a[4];
double b[4];
int rank, nprocs, it;
#pragma comm_parameters sendwhen(rank==0) receivewhen(rank!=0) sender(0) receiver(it) max_comm_iter(4) sbuf(a) rbuf(b)
{
#pragma comm_p2p
{
}
}
"""

FREE_NAME = """
double a[4];
double b[4];
int rank, nprocs;
#pragma comm_p2p sender(mystery) receiver(mystery) sbuf(a) rbuf(b)
"""

ALL_TARGETS = ("TARGET_COMM_MPI_2SIDE", "TARGET_COMM_MPI_1SIDE",
               "TARGET_COMM_SHMEM")


def codes(report):
    return {d.code for d in report.diagnostics}


class TestCleanPrograms:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_ring_clean_on_every_target(self, target):
        report = verify_program(parse_program(RING), nprocs=5,
                                target=target)
        assert report.errors == []

    def test_nprocs_one_self_transfer_is_clean(self):
        report = verify_program(parse_program(RING), nprocs=1)
        assert report.errors == []

    def test_report_carries_graph_and_world(self):
        report = verify_program(parse_program(RING), nprocs=5)
        assert report.nprocs == 5
        assert report.graph is not None
        assert len(report.graph.traces) == 5


class TestDeadlockProofs:
    @pytest.mark.parametrize("target", ALL_TARGETS)
    def test_wait_before_post_is_a_cycle(self, target):
        report = verify_program(parse_program(CYCLE), nprocs=4,
                                target=target)
        assert "CI001" in codes(report)
        [diag] = [d for d in report.errors if d.code == "CI001"]
        assert "deadlock cycle" in diag.message
        assert "rank" in diag.message

    def test_message_never_sent(self):
        report = verify_program(parse_program(NEVER_SENT), nprocs=4)
        assert "CI002" in codes(report)
        [diag] = [d for d in report.errors if d.code == "CI002"]
        # The offending sender -> receiver pair is named.
        assert "sender 0" in diag.message
        assert "receiver 2" in diag.message

    def test_one_sided_put_without_exposure(self):
        report = verify_program(parse_program(NO_EXPOSURE), nprocs=4,
                                target="TARGET_COMM_MPI_1SIDE")
        assert "CI003" in codes(report)

    def test_directive_target_clause_overrides_default(self):
        pinned = NO_EXPOSURE.replace(
            "rbuf(b)", "rbuf(b) target(TARGET_COMM_MPI_1SIDE)")
        report = verify_program(parse_program(pinned), nprocs=4,
                                target="TARGET_COMM_MPI_2SIDE")
        assert "CI003" in codes(report)

    def test_two_sided_send_without_receiver_is_not_a_deadlock(self):
        report = verify_program(parse_program(NO_EXPOSURE), nprocs=4,
                                target="TARGET_COMM_MPI_2SIDE")
        assert not (codes(report) & DEADLOCK_CODES)

    def test_loop_carried_partner_demotes_missing_message(self):
        report = verify_program(parse_program(LOOP_CARRIED), nprocs=4,
                                extra_vars={"it": 1})
        assert report.errors == []
        demoted = [d for d in report.warnings if d.code == "CI002"]
        assert demoted  # one per starved rank in this snapshot
        assert all("max_comm_iter" in d.message for d in demoted)


class TestStaleReadProofs:
    def test_read_before_guaranteeing_sync(self):
        report = verify_program(parse_program(EARLY_READ), nprocs=4)
        assert "CI012" in codes(report)
        [diag] = [d for d in report.errors if d.code == "CI012"]
        assert "'b'" in diag.message

    @pytest.mark.parametrize("weakening", WEAKENINGS)
    def test_weakened_plan_leaves_unsynchronized_receive(
            self, weakening):
        report = verify_program(parse_program(RING), nprocs=5,
                                weakening=weakening)
        assert "CI011" in codes(report)

    def test_unknown_weakening_rejected(self):
        with pytest.raises(ValueError, match="unknown weakening"):
            verify_program(parse_program(RING), weakening="no-such")


class TestConsolidationSafety:
    def test_cross_region_alias_downgrades_plan(self):
        report = verify_program(parse_program(ADJ_ALIAS), nprocs=4)
        assert "CI020" in codes(report)
        # The downgrade keeps the program correct: no stale or deadlock.
        assert report.errors == []


class TestUnrollability:
    def test_free_name_reported_once(self):
        report = verify_program(parse_program(FREE_NAME), nprocs=4)
        info = [d for d in report.diagnostics if d.code == "CI032"]
        assert len(info) == 1
        assert "mystery" in info[0].message

    def test_extra_vars_resolve_free_names(self):
        report = verify_program(parse_program(FREE_NAME), nprocs=4,
                                extra_vars={"mystery": 1})
        assert "CI032" not in codes(report)
