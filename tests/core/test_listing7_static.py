"""Static handling of the paper's Listing 7 shape (setEvec overlap)."""

import pytest

from repro.core.analysis import lint_program, overlap_legal
from repro.core.codegen import generate_c
from repro.core.pragma import parse_program

# Listing 7, adapted only in its declarations (the paper's snippet
# references C++ members our C-subset scanner cannot see).
LISTING7 = """
double ev[48];
double evec[3];
int rank, rank0, rcv_rank, num_types, num_local, send_p, recv_p, p, n;

while((rank == 0 && send_p < num_types) || (rank != 0 && recv_p < num_local))
{
#pragma comm_parameters sendwhen(rank == 0)
    receivewhen(rank != 0) sender(rank0)
    receiver(rcv_rank) count(3)
    max_comm_iter(num_types)
    place_sync(END_PARAM_REGION)
{
#pragma comm_p2p sbuf(&ev[3*send_p])
    rbuf(&evec[0])
{
    calculateCoreState(comm, lsms, local, recv_p, core_states_done);
}
}
}
"""


class TestListing7:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(LISTING7)

    def test_structure(self, program):
        assert len(program.regions()) == 1
        region = program.regions()[0]
        assert region.clauses.exprs["max_comm_iter"] == "num_types"
        assert region.clauses.place_sync.value == "END_PARAM_REGION"
        inner = region.p2p_instances()
        assert len(inner) == 1
        assert inner[0].clauses.sbuf == ["&ev[3*send_p]"]
        assert inner[0].clauses.rbuf == ["&evec[0]"]

    def test_body_is_the_overlapped_computation(self, program):
        node = program.regions()[0].p2p_instances()[0]
        body_text = " ".join(
            ln for raw in node.body for ln in getattr(raw, "lines", []))
        assert "calculateCoreState" in body_text

    def test_overlap_is_legal(self, program):
        """The body touches neither ev nor evec — exactly the paper's
        claim that the first core-state computation is independent of
        the spin configurations."""
        node = program.regions()[0].p2p_instances()[0]
        assert overlap_legal(node).legal

    def test_translation_emits_overlapped_structure(self, program):
        out = generate_c(program)
        isend = out.index("MPI_Isend")
        body = out.index("calculateCoreState")
        waitall = out.index("MPI_Waitall")
        # post -> compute -> synchronize: the overlap order.
        assert isend < body < waitall
        assert "if (rank == 0) {" in out
        assert "if (rank != 0) {" in out

    def test_count_clause_respected(self, program):
        out = generate_c(program)
        assert "MPI_Isend(&ev[3*send_p], 3, MPI_DOUBLE, (rcv_rank)" in out

    def test_lint_clean(self, program):
        report = lint_program(program, nprocs=4,
                              extra_vars={"rank0": 0, "rcv_rank": 1})
        assert not report.errors
