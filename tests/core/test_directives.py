"""Runtime directive semantics: the paper's listings as executable tests."""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.core import (
    SyncPlacement,
    Target,
    comm_flush,
    comm_p2p,
    comm_parameters,
)
from repro.errors import ClauseError, SimProcessError, SymmetryError
from repro.netmodel import uniform_model, zero_model
from repro.sim import Engine


def run(nprocs, fn, *, model=None, trace=False):
    model = model or zero_model()
    eng = Engine(nprocs, trace=trace)

    def main(env):
        mpi.init(env, model)      # fix the machine model for all targets
        return fn(env)

    return eng.run(main), eng


class TestListing1Ring:
    """Listing 1: ring pattern with only the required clauses."""

    def test_ring_pattern(self):
        def prog(env):
            prev = (env.rank - 1 + env.size) % env.size
            nxt = (env.rank + 1) % env.size
            buf1 = np.full(4, float(env.rank))
            buf2 = np.zeros(4)
            with comm_p2p(env, sender=prev, receiver=nxt,
                          sbuf=buf1, rbuf=buf2):
                pass
            return buf2[0]

        res, _ = run(5, prog)
        assert res.values == [4.0, 0.0, 1.0, 2.0, 3.0]

    def test_standalone_p2p_synchronizes_at_exit(self):
        """Data must be delivered when the with-block closes."""
        def prog(env):
            nxt = (env.rank + 1) % env.size
            prev = (env.rank - 1) % env.size
            out = np.array([float(env.rank)])
            inb = np.zeros(1)
            with comm_p2p(env, sender=prev, receiver=nxt,
                          sbuf=out, rbuf=inb):
                pass
            got_inside = inb[0]   # after exit: synced
            return got_inside

        res, _ = run(2, prog)
        assert res.values == [1.0, 0.0]


class TestListing2EvenOdd:
    """Listing 2: evens send to the nearest odd process."""

    def test_even_to_odd(self):
        def prog(env):
            buf1 = np.full(2, float(env.rank * 10))
            buf2 = np.zeros(2)
            with comm_p2p(env, sbuf=buf1, rbuf=buf2,
                          sender=env.rank - 1, receiver=env.rank + 1,
                          sendwhen=env.rank % 2 == 0,
                          receivewhen=env.rank % 2 == 1):
                pass
            return buf2[0]

        res, _ = run(4, prog)
        assert res.values[1] == 0.0 * 10  # from rank 0
        assert res.values[3] == 20.0      # from rank 2
        assert res.values[0] == 0.0       # evens receive nothing
        assert res.values[2] == 0.0


class TestListing3LoopRegion:
    """Listing 3: a comm_parameters region wrapping a comm_p2p loop."""

    def test_pipelined_elements(self):
        n = 6

        def prog(env):
            buf1 = np.arange(float(n)) + 100 * env.rank
            buf2 = np.zeros(n)
            with comm_parameters(env, sender=env.rank - 1,
                                 receiver=env.rank + 1,
                                 sendwhen=env.rank % 2 == 0,
                                 receivewhen=env.rank % 2 == 1,
                                 count=1, max_comm_iter=n,
                                 place_sync="END_PARAM_REGION"):
                for p in range(n):
                    with comm_p2p(env, sbuf=buf1[p:p + 1],
                                  rbuf=buf2[p:p + 1]):
                        pass
            return buf2.tolist()

        res, _ = run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_sync_consolidated_to_one_waitall(self):
        """Adjacent independent instances share ONE sync call."""
        n = 8

        def prog(env):
            buf1 = np.arange(float(n))
            buf2 = np.zeros(n)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 count=1):
                for p in range(n):
                    with comm_p2p(env, sbuf=buf1[p:p + 1],
                                  rbuf=buf2[p:p + 1]):
                        pass
            return buf2.tolist()

        res, eng = run(2, prog)
        assert res.values[1] == list(range(n))
        # One consolidated Waitall per participating rank.
        assert eng.stats.sync_calls["waitall"] == 2
        assert eng.stats.sync_calls["wait"] == 0


class TestClauseResolution:
    def test_region_supplies_required_clauses(self):
        def prog(env):
            a = np.array([float(env.rank)])
            b = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                with comm_p2p(env, sbuf=a, rbuf=b):
                    pass
            return b[0]

        res, _ = run(2, prog)
        assert res.values[1] == 0.0

    def test_missing_required_clause_rejected(self):
        def prog(env):
            with comm_p2p(env, sbuf=np.zeros(1), rbuf=np.zeros(1)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(1, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_instance_overrides_region_receiver(self):
        def prog(env):
            a = np.array([42.0])
            b = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 2):
                with comm_p2p(env, sbuf=a, rbuf=b, receiver=2):
                    pass
            return b[0]

        res, _ = run(3, prog)
        assert res.values[2] == 42.0
        assert res.values[1] == 0.0

    def test_rank_out_of_world_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver=99,
                          sbuf=np.zeros(1), rbuf=np.zeros(1)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)


class TestCountInference:
    def test_count_from_smallest_array(self):
        """Section III-B: message size = size of the smallest array."""
        def prog(env):
            small = np.arange(3.0) if env.rank == 0 else np.zeros(3)
            big = np.zeros(10)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=small, rbuf=big):
                pass
            return big.tolist()

        res, _ = run(2, prog)
        assert res.values[1][:3] == [0.0, 1.0, 2.0]
        assert res.values[1][3:] == [0.0] * 7

    def test_explicit_count_respected(self):
        def prog(env):
            src = np.arange(10.0)
            dst = np.zeros(10)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=src, rbuf=dst, count=2):
                pass
            return dst.tolist()

        res, _ = run(2, prog)
        assert res.values[1][:2] == [0.0, 1.0]
        assert sum(res.values[1][2:]) == 0.0

    def test_count_exceeding_buffer_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=np.zeros(2), rbuf=np.zeros(2), count=5):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_mismatched_buffer_list_lengths_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver=1,
                          sbuf=[np.zeros(1), np.zeros(1)],
                          rbuf=np.zeros(1)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)


class TestBufferLists:
    def test_multiple_buffers_one_directive(self):
        """Listing 5 style: sbuf(vr, rhotot) rbuf(vr, rhotot)."""
        def prog(env):
            vr = (np.arange(4.0) if env.rank == 0 else np.zeros(4))
            rhotot = (np.arange(4.0) * 2 if env.rank == 0
                      else np.zeros(4))
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=[vr, rhotot], rbuf=[vr, rhotot]):
                pass
            return (vr.tolist(), rhotot.tolist())

        res, _ = run(2, prog)
        assert res.values[1] == ([0, 1, 2, 3], [0, 2, 4, 6])


class TestTargets:
    @pytest.mark.parametrize("target", [
        "TARGET_COMM_MPI_2SIDE",
        "TARGET_COMM_MPI_1SIDE",
    ])
    def test_mpi_targets_deliver(self, target):
        def prog(env):
            src = np.arange(5.0)
            dst = np.zeros(5)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=src, rbuf=dst, target=target):
                pass
            return dst.tolist()

        res, _ = run(2, prog)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_shmem_target_delivers_with_symmetric_buffers(self):
        def prog(env):
            sh = shmem.init(env)
            dst = sh.malloc(5, np.float64)
            src = np.arange(5.0)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=src, rbuf=dst,
                          target="TARGET_COMM_SHMEM"):
                pass
            return dst.data.tolist()

        res, _ = run(2, prog)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_shmem_target_rejects_plain_rbuf(self):
        """Section III-B: SHMEM buffers must be symmetric objects."""
        def prog(env):
            with comm_p2p(env, sender=0, receiver=1,
                          sbuf=np.zeros(2), rbuf=np.zeros(2),
                          target="TARGET_COMM_SHMEM"):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, SymmetryError)

    def test_mpi1s_generates_no_two_sided_traffic(self):
        def prog(env):
            src = np.ones(4)
            dst = np.zeros(4)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=src, rbuf=dst,
                          target="TARGET_COMM_MPI_1SIDE"):
                pass
            return dst.sum()

        res, eng = run(2, prog)
        assert res.values[1] == 4.0
        assert eng.stats.messages["mpi1s"] == 1
        assert eng.stats.messages["mpi2s"] == 0

    def test_shmem_uses_typed_puts(self):
        def prog(env):
            sh = shmem.init(env)
            dst = sh.malloc(3, np.float64)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=np.ones(3), rbuf=dst,
                          target="TARGET_COMM_SHMEM"):
                pass

        _, eng = run(2, prog, trace=True)
        puts = eng.trace.of_kind("shmem.put")
        assert len(puts) == 1
        assert puts[0].fields["call"] == "shmem_double_put"


class TestOverlap:
    def test_body_runs_before_sync(self):
        """The body computation overlaps the transfer: total time is
        max(comm, compute), not their sum."""
        def prog(env):
            src = np.zeros(100_000)   # rendezvous-sized: real wire time
            dst = np.zeros(100_000)
            t0 = env.now
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=src, rbuf=dst):
                env.compute(1e-3)  # 1 ms body, >> the transfer
            return env.now - t0

        res, _ = run(2, prog, model=uniform_model())
        wire = uniform_model().transport("mpi2s").wire_time(800_000)
        assert wire > 100e-6  # sanity: transfer is substantial
        for elapsed in res.values:
            # Overlapped: clearly less than compute + wire.
            assert elapsed < 1e-3 + 0.5 * wire
            assert elapsed >= 1e-3

    def test_without_body_receiver_pays_wire_time(self):
        def prog(env):
            src = np.zeros(100_000)
            dst = np.zeros(100_000)
            t0 = env.now
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=env.rank == 0,
                          receivewhen=env.rank == 1,
                          sbuf=src, rbuf=dst):
                pass
            return env.now - t0

        res, _ = run(2, prog, model=uniform_model())
        wire = uniform_model().transport("mpi2s").wire_time(800_000)
        assert res.values[1] >= wire


class TestDependentInstances:
    def test_overlapping_buffers_force_early_sync(self):
        """An instance whose rbuf overlaps a pending one cannot share the
        consolidated sync; the runtime flushes first and data stays
        correct (second transfer wins)."""
        def prog(env):
            a = np.array([1.0]) if env.rank == 0 else np.zeros(1)
            b = np.array([2.0]) if env.rank == 0 else np.zeros(1)
            dst = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                with comm_p2p(env, sbuf=a, rbuf=dst):
                    pass
                with comm_p2p(env, sbuf=b, rbuf=dst):  # same rbuf!
                    pass
            return dst[0]

        res, eng = run(2, prog, trace=True)
        assert res.values[1] == 2.0
        assert len(eng.trace.of_kind("dir.dependent_flush")) >= 1


class TestSyncPlacement:
    def test_begin_next_param_region(self):
        """Sync deferred to the next region's entry."""
        def prog(env):
            a = np.array([5.0]) if env.rank == 0 else np.zeros(1)
            dst = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 place_sync="BEGIN_NEXT_PARAM_REGION"):
                with comm_p2p(env, sbuf=a, rbuf=dst):
                    pass
            # Next region: carried sync runs at its entry.
            b = np.array([6.0]) if env.rank == 0 else np.zeros(1)
            dst2 = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                after_entry = dst[0]
                with comm_p2p(env, sbuf=b, rbuf=dst2):
                    pass
            return (after_entry, dst2[0])

        res, _ = run(2, prog)
        assert res.values[1] == (5.0, 6.0)

    def test_end_adj_param_regions_chain(self):
        """A chain of END_ADJ regions shares one deferred sync."""
        def prog(env):
            srcs = [np.array([float(i)]) if env.rank == 0 else np.zeros(1)
                    for i in range(3)]
            dsts = [np.zeros(1) for _ in range(3)]
            for i in range(3):
                with comm_parameters(env, sender=0, receiver=1,
                                     sendwhen=env.rank == 0,
                                     receivewhen=env.rank == 1,
                                     place_sync="END_ADJ_PARAM_REGIONS"):
                    with comm_p2p(env, sbuf=srcs[i], rbuf=dsts[i]):
                        pass
            comm_flush(env)
            return [d[0] for d in dsts]

        res, eng = run(2, prog, trace=True)
        assert res.values[1] == [0.0, 1.0, 2.0]
        # The three regions consolidated into a single sync event per
        # participating rank.
        syncs = eng.trace.of_kind("dir.sync")
        assert len(syncs) == 2  # one per rank

    def test_end_adj_chain_broken_by_normal_region(self):
        def prog(env):
            a = np.array([1.0]) if env.rank == 0 else np.zeros(1)
            dst = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 place_sync="END_ADJ_PARAM_REGIONS"):
                with comm_p2p(env, sbuf=a, rbuf=dst):
                    pass
            # A non-END_ADJ region terminates the chain at its entry.
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                chain_result = dst[0]
            return chain_result

        res, _ = run(2, prog)
        assert res.values[1] == 1.0


class TestStructuredPayloads:
    def test_composite_buffer_uses_cached_derived_type(self):
        """Section III-A: one struct creation, reused in scope."""
        dt = np.dtype([("n", "i4"), ("x", "f8", (3,))], align=True)

        def prog(env):
            src = np.zeros(2, dtype=dt)
            if env.rank == 0:
                src["n"] = [1, 2]
                src["x"][0] = [1.0, 2.0, 3.0]
            dst = np.zeros(2, dtype=dt)
            for _ in range(4):  # repeated use: type created once
                with comm_p2p(env, sender=0, receiver=1,
                              sendwhen=env.rank == 0,
                              receivewhen=env.rank == 1,
                              sbuf=src, rbuf=dst):
                    pass
            return (int(dst["n"][1]), dst["x"][0].tolist())

        res, eng = run(2, prog)
        assert res.values[1] == (2, [1.0, 2.0, 3.0])
        # One creation per rank; the rest are cache hits.
        assert eng.stats.datatype_ops["struct_created"] == 2
        assert eng.stats.datatype_ops["struct_reused"] >= 6
