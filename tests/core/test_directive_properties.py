"""Property-based tests of the directive layer.

The strongest invariant a translation layer can offer: for arbitrary
well-formed communication intents, the directive execution is
observationally equivalent to hand-written message passing — same
delivered data, no deadlock — for every translation target.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import mpi, shmem
from repro.core import comm_p2p, comm_parameters
from repro.netmodel import zero_model
from repro.sim import Engine


@st.composite
def transfer_plans(draw):
    """A random well-formed set of directive transfers.

    Each entry: (sender, receiver, payload length). Senders and
    receivers chosen freely (self-transfers allowed); each transfer
    becomes one directive instance with distinct buffers.
    """
    nprocs = draw(st.integers(min_value=2, max_value=5))
    n = draw(st.integers(min_value=1, max_value=8))
    plan = []
    for _ in range(n):
        s = draw(st.integers(min_value=0, max_value=nprocs - 1))
        r = draw(st.integers(min_value=0, max_value=nprocs - 1))
        size = draw(st.integers(min_value=1, max_value=32))
        plan.append((s, r, size))
    return nprocs, plan


@given(transfer_plans(),
       st.sampled_from(["TARGET_COMM_MPI_2SIDE", "TARGET_COMM_MPI_1SIDE"]))
@settings(max_examples=40, deadline=None)
def test_property_directives_deliver_arbitrary_plans(plan_data, target):
    nprocs, plan = plan_data
    model = zero_model()
    eng = Engine(nprocs)

    def prog(env):
        mpi.init(env, model)
        received = {}
        with comm_parameters(env, target=target):
            for i, (s, r, size) in enumerate(plan):
                out = np.full(size, float(i + 1))
                inb = np.zeros(size)
                if env.rank == r:
                    received[i] = inb
                with comm_p2p(env, sender=s, receiver=r,
                              sendwhen=env.rank == s,
                              receivewhen=env.rank == r,
                              sbuf=out, rbuf=inb):
                    pass
        return {i: buf[0] for i, buf in received.items()}

    res = eng.run(prog)
    for i, (s, r, size) in enumerate(plan):
        assert res.values[r][i] == float(i + 1), \
            f"transfer {i} ({s}->{r}, {size}) lost under {target}"


@given(transfer_plans())
@settings(max_examples=25, deadline=None)
def test_property_shmem_target_delivers(plan_data):
    nprocs, plan = plan_data
    model = zero_model()
    eng = Engine(nprocs)

    def prog(env):
        mpi.init(env, model)
        sh = shmem.init(env)
        bufs = [sh.malloc(size, np.float64) for _, _, size in plan]
        with comm_parameters(env, target="TARGET_COMM_SHMEM"):
            for i, (s, r, size) in enumerate(plan):
                out = np.full(size, float(i + 1))
                with comm_p2p(env, sender=s, receiver=r,
                              sendwhen=env.rank == s,
                              receivewhen=env.rank == r,
                              sbuf=out, rbuf=bufs[i]):
                    pass
        return [float(b.data[0]) for b in bufs]

    res = eng.run(prog)
    for i, (s, r, size) in enumerate(plan):
        assert res.values[r][i] == float(i + 1)


@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=10),
       st.sampled_from(["END_PARAM_REGION", "BEGIN_NEXT_PARAM_REGION",
                        "END_ADJ_PARAM_REGIONS"]))
@settings(max_examples=30, deadline=None)
def test_property_all_sync_placements_deliver(nprocs, n, placement):
    """Any place_sync policy: data is correct once the chain is flushed."""
    from repro.core import comm_flush
    model = zero_model()
    eng = Engine(nprocs)

    def prog(env):
        mpi.init(env, model)
        out = np.arange(float(n)) + env.rank * 100
        inb = np.zeros(n)
        with comm_parameters(env, sender=0, receiver=nprocs - 1,
                             sendwhen=env.rank == 0,
                             receivewhen=env.rank == nprocs - 1,
                             count=1, place_sync=placement):
            for p in range(n):
                with comm_p2p(env, sbuf=out[p:p + 1],
                              rbuf=inb[p:p + 1]):
                    pass
        comm_flush(env)
        return inb.tolist()

    res = eng.run(prog)
    assert res.values[nprocs - 1] == [float(p) for p in range(n)]


@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=2, max_value=12))
@settings(max_examples=25, deadline=None)
def test_property_consolidation_never_hurts_correctness_or_time(nprocs, n):
    """Consolidated sync is never slower than per-instance sync under
    the uniform model, and delivers the same data."""
    from repro.netmodel import uniform_model
    model_a = uniform_model()
    model_b = uniform_model()

    def make(consolidated, model):
        def prog(env):
            mpi.init(env, model)
            out = np.arange(float(n))
            inb = np.zeros(n)
            if consolidated:
                with comm_parameters(env, sender=0, receiver=1,
                                     sendwhen=env.rank == 0,
                                     receivewhen=env.rank == 1,
                                     count=1):
                    for p in range(n):
                        with comm_p2p(env, sbuf=out[p:p + 1],
                                      rbuf=inb[p:p + 1]):
                            pass
            else:
                for p in range(n):
                    with comm_p2p(env, sender=0, receiver=1,
                                  sendwhen=env.rank == 0,
                                  receivewhen=env.rank == 1,
                                  count=1, sbuf=out[p:p + 1],
                                  rbuf=inb[p:p + 1]):
                        pass
            return (inb.tolist(), env.now)

        return prog

    res_c = Engine(nprocs).run(make(True, model_a))
    res_u = Engine(nprocs).run(make(False, model_b))
    assert res_c.values[1][0] == res_u.values[1][0]
    assert res_c.values[0][1] <= res_u.values[0][1] + 1e-12
    assert res_c.values[1][1] <= res_u.values[1][1] + 1e-12
