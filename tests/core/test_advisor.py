"""The CI1xx performance advisor and the proof-carrying fix engine."""

import pytest

from repro.core.analysis.advisor import advise_program, apply_rewrite
from repro.core.analysis.fix import fix_source
from repro.core.analysis.lint import lint_program
from repro.core.analysis.progsim import simulate_program
from repro.core.clauses import SyncPlacement, Target
from repro.core.ir import P2PNode, ParamRegionNode
from repro.core.pragma import parse_program

RING_UNCONSOLIDATED = """\
double s0[512];
double r0[512];
double s1[512];
double r1[512];
double s2[512];
double r2[512];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s0) rbuf(r0)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s1) rbuf(r1)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s2) rbuf(r2)
consume3(r0, r1, r2);
"""

EARLY_SYNC = """\
double field[8192];
double halo[8192];
int rank, nprocs;
#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(field) rbuf(halo)
}
compute_us(15);
consume(halo);
"""


def _codes(findings):
    return [f.diagnostic.code for f in findings]


# ---------------------------------------------------------------------------
# CI100 — missed consolidation


def test_ci100_standalone_run_flagged_with_saving():
    prog = parse_program(RING_UNCONSOLIDATED)
    findings = advise_program(prog)
    assert "CI100" in _codes(findings)
    f = next(f for f in findings if f.diagnostic.code == "CI100")
    assert f.diagnostic.severity == "warning"
    assert f.diagnostic.saving_s is not None and f.diagnostic.saving_s > 0
    assert f.rewrite is not None and f.rewrite.kind == "merge-standalone"
    assert "estimated_saving_s" in f.diagnostic.as_dict()


def test_ci100_apply_merges_into_one_region():
    prog = parse_program(RING_UNCONSOLIDATED)
    [f] = [f for f in advise_program(prog)
           if f.diagnostic.code == "CI100"]
    assert apply_rewrite(prog, f.rewrite)
    assert len(prog.regions()) == 1
    assert len(prog.regions()[0].p2p_instances()) == 3
    # and the printed form reparses to the same shape
    reparsed = parse_program(prog.to_source())
    assert len(reparsed.regions()) == 1
    assert len(reparsed.regions()[0].p2p_instances()) == 3


def test_ci100_not_raised_for_overlapping_buffers():
    src = """\
double a[64];
double b[64];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(a) rbuf(b)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(b) rbuf(a)
"""
    findings = advise_program(parse_program(src))
    assert "CI100" not in _codes(findings)


def test_ci100_region_chain_gets_place_sync_rewrite():
    src = """\
double sa[128];
double ra[128];
double sb[128];
double rb[128];
int rank, nprocs;
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sa) rbuf(ra)
{
    #pragma comm_p2p
}
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb)
{
    #pragma comm_p2p
}
"""
    prog = parse_program(src)
    merges = [f for f in advise_program(prog)
              if f.rewrite is not None
              and f.rewrite.kind == "merge-regions"]
    assert merges, "adjacent-region chain not flagged"
    assert apply_rewrite(prog, merges[0].rewrite)
    assert all(
        r.clauses.place_sync is SyncPlacement.END_ADJ_PARAM_REGIONS
        for r in prog.regions())


# ---------------------------------------------------------------------------
# CI101 / CI102 — forfeited overlap


def test_ci101_empty_overlap_body():
    prog = parse_program(EARLY_SYNC)
    findings = advise_program(prog)
    assert "CI101" in _codes(findings)
    f = next(f for f in findings if f.diagnostic.code == "CI101")
    assert f.rewrite is not None and f.rewrite.kind == "hoist-overlap"
    assert f.diagnostic.saving_s == pytest.approx(15e-6)


def test_ci101_apply_hoists_compute_into_body():
    prog = parse_program(EARLY_SYNC)
    [f] = [f for f in advise_program(prog)
           if f.diagnostic.code == "CI101"]
    assert apply_rewrite(prog, f.rewrite)
    [region] = prog.regions()
    [p2p] = region.p2p_instances()
    body_text = p2p.to_source()
    assert "compute_us(15)" in body_text
    assert "consume(halo)" not in body_text  # uses halo: must not move


def test_ci102_nonempty_body_with_late_work():
    src = """\
double field[1024];
double halo[1024];
int rank, nprocs;
#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(field) rbuf(halo)
    {
        compute_us(2);
    }
}
compute_us(10);
consume(halo);
"""
    findings = advise_program(parse_program(src))
    assert "CI102" in _codes(findings)
    assert "CI101" not in _codes(findings)


def test_overlap_pass_does_not_move_buffer_uses():
    src = """\
double field[1024];
double halo[1024];
int rank, nprocs;
#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(field) rbuf(halo)
}
consume(halo);
compute_us(10);
"""
    # the first trailing line touches the received buffer: no hoist
    findings = advise_program(parse_program(src))
    assert all(c not in ("CI101", "CI102") for c in _codes(findings))


# ---------------------------------------------------------------------------
# CI103 — oversized count


OVERSIZED = """\
double a[256];
double b[256];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(a) rbuf(b) count(4096)
"""


def test_ci103_oversized_count_flagged_and_tightened():
    prog = parse_program(OVERSIZED)
    findings = advise_program(prog)
    f = next(f for f in findings if f.diagnostic.code == "CI103")
    assert f.rewrite is not None
    assert f.rewrite.kind == "tighten-count"
    assert f.rewrite.value == "256"
    assert apply_rewrite(prog, f.rewrite)
    [node] = prog.all_p2p()
    assert node.clauses.exprs["count"] == "256"


def test_ci103_fix_accepted_even_though_original_cannot_run():
    result = fix_source(OVERSIZED)
    assert result.changed
    [step] = result.accepted
    assert step.code == "CI103"
    # the broken original imposes no time bound...
    assert step.times_before_s == {}
    # ...but the repaired program must run on every target
    assert len(step.times_after_s) == len(list(Target))


# ---------------------------------------------------------------------------
# CI110 — lowering-target mismatch


def test_ci110_slower_explicit_target_flagged():
    src = """\
double big_s[4096];
double big_r[4096];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(big_s) rbuf(big_r) target(TARGET_COMM_MPI_1SIDE)
"""
    prog = parse_program(src)
    findings = advise_program(prog)
    f = next(f for f in findings if f.diagnostic.code == "CI110")
    assert f.rewrite is not None and f.rewrite.kind == "retarget"
    assert f.diagnostic.saving_s > 0
    # the advisory is measured: the proposed target really is faster
    base = simulate_program(prog, 8).modeled_time
    assert apply_rewrite(prog, f.rewrite)
    assert simulate_program(prog, 8).modeled_time < base


def test_ci110_not_raised_without_explicit_target():
    findings = advise_program(parse_program(RING_UNCONSOLIDATED))
    assert "CI110" not in _codes(findings)


# ---------------------------------------------------------------------------
# The proof-carrying fix engine


def test_fix_ring_unconsolidated_end_to_end():
    result = fix_source(RING_UNCONSOLIDATED)
    assert result.changed
    assert len(result.accepted) == 1
    step = result.accepted[0]
    assert step.code == "CI100"
    for t in Target:
        assert (step.times_after_s[t.value]
                <= step.times_before_s[t.value])
    # the fixed source parses and lints clean
    fixed = parse_program(result.source)
    assert len(fixed.regions()) == 1
    assert not lint_program(fixed).errors


def test_fix_is_idempotent():
    result = fix_source(RING_UNCONSOLIDATED)
    again = fix_source(result.source)
    assert not again.changed
    assert again.steps == []


def test_fix_early_sync_hoists_and_proves():
    result = fix_source(EARLY_SYNC)
    assert result.changed
    [step] = result.accepted
    assert step.code == "CI101"
    for t in Target:
        before = step.times_before_s[t.value]
        after = step.times_after_s[t.value]
        assert after < before
    # acceptance criterion: >= 1.2x modeled speedup on some target
    best = max(step.times_before_s[t.value] / step.times_after_s[t.value]
               for t in Target)
    assert best >= 1.2


#: Merging these two directives is *tempting* (their clause buffers are
#: pairwise disjoint) but *wrong*: the second directive's overlap body
#: reads ``ra`` — under one consolidated region the read would happen
#: before the synchronization that guarantees it.
UNSAFE_MERGE = """\
double sa[256];
double ra[256];
double sb[256];
double rb[256];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sa) rbuf(ra)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(sb) rbuf(rb)
{
    acc += ra[0];
}
consume(rb);
"""


def test_unsafe_merge_is_proposed_then_rejected_by_proof_gate():
    """Satellite: a CI1xx fixit that would introduce a CI0xx error is
    rejected by the verifier gate."""
    prog = parse_program(UNSAFE_MERGE)
    merges = [f for f in advise_program(prog)
              if f.rewrite is not None
              and f.rewrite.kind == "merge-standalone"]
    assert merges, "the optimistic advisor should propose the merge"

    result = fix_source(UNSAFE_MERGE)
    assert not result.changed
    assert result.accepted == []
    [step] = [s for s in result.rejected
              if s.kind == "merge-standalone"]
    assert "verifier gate" in step.reason
    assert "CI012" in step.reason  # stale read


def test_unsafe_merge_is_an_error_on_every_target():
    """The rewrite the gate rejected really is broken on all three
    lowering targets, not just one."""
    prog = parse_program(UNSAFE_MERGE)
    [f] = [f for f in advise_program(prog)
           if f.rewrite is not None
           and f.rewrite.kind == "merge-standalone"]
    assert apply_rewrite(prog, f.rewrite)
    merged = parse_program(prog.to_source())
    for target in Target:
        report = lint_program(merged, targets=[target])
        assert any(d.code == "CI012" for d in report.errors), \
            f"no stale-read proof on {target.value}"


def test_lint_advise_flag_appends_ci1xx():
    prog = parse_program(RING_UNCONSOLIDATED)
    silent = lint_program(prog)
    advised = lint_program(prog, advise=True)
    assert all(not d.code.startswith("CI1")
               for d in silent.diagnostics if d.code)
    assert any(d.code == "CI100" for d in advised.diagnostics)
    # advisories are warnings: they must not flip the exit status
    assert not advised.errors


def test_fix_rejects_remembered_not_retried():
    result = fix_source(UNSAFE_MERGE)
    signatures = [s.signature for s in result.steps]
    assert len(signatures) == len(set(signatures))
