"""Misuse and error-path behaviour of the runtime layers."""

import numpy as np
import pytest

from repro import mpi
from repro.core import comm_flush, comm_p2p, comm_parameters
from repro.core.directives import CommParameters
from repro.errors import (
    ClauseError,
    DirectiveError,
    SimProcessError,
    SimStateError,
)
from repro.netmodel import zero_model
from repro.sim import Engine


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        mpi.init(env, model)
        return fn(env)

    return eng.run(main), eng


class TestEnvMisuse:
    def test_env_used_from_wrong_rank_rejected(self):
        stash = {}

        def prog(env):
            if env.rank == 0:
                stash["env"] = env
                env.compute(1.0)  # park rank 0 so rank 1 runs
            else:
                with pytest.raises(SimStateError):
                    stash["env"].compute(1.0)

        run(2, prog)

    def test_env_outside_run_rejected(self):
        eng = Engine(1)
        captured = {}
        eng.run(lambda env: captured.setdefault("env", env))
        with pytest.raises(SimStateError):
            captured["env"].compute(1.0)


class TestDirectiveMisuse:
    def test_region_exit_out_of_order_rejected(self):
        def prog(env):
            a = CommParameters(env, sender=0, receiver=0)
            b = CommParameters(env, sender=0, receiver=0)
            a.__enter__()
            b.__enter__()
            # Exiting `a` while `b` is innermost violates LIFO.
            with pytest.raises(DirectiveError):
                a.__exit__(None, None, None)
            # Cleanup in the right order.
            b.__exit__(None, None, None)
            a.__exit__(None, None, None)

        run(1, prog)

    def test_error_in_body_skips_sync_and_propagates(self):
        """An exception inside the body must not hang in sync code."""
        def prog(env):
            dst = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                with comm_p2p(env, sbuf=np.ones(1), rbuf=dst):
                    raise RuntimeError("body blew up")

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, RuntimeError)

    def test_flush_without_carry_is_noop(self):
        def prog(env):
            comm_flush(env)
            return "ok"

        res, _ = run(1, prog)
        assert res.values[0] == "ok"

    def test_non_buffer_sbuf_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver=0,
                          sbuf="not a buffer", rbuf=np.zeros(1)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(1, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_empty_buffer_list_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver=0,
                          sbuf=[], rbuf=np.zeros(1)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(1, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_non_int_receiver_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver="east",
                          sbuf=np.zeros(1), rbuf=np.zeros(1)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(1, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_mismatched_element_sizes_rejected(self):
        def prog(env):
            with comm_p2p(env, sender=0, receiver=0,
                          sbuf=np.zeros(4, dtype=np.float64),
                          rbuf=np.zeros(4, dtype=np.int32)):
                pass

        with pytest.raises(SimProcessError) as ei:
            run(1, prog)
        assert isinstance(ei.value.original, ClauseError)


class TestMaxCommIter:
    def test_within_bound_ok(self):
        def prog(env):
            out = np.arange(3.0)
            inb = np.zeros(3)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 count=1, max_comm_iter=3):
                for p in range(3):
                    with comm_p2p(env, sbuf=out[p:p + 1],
                                  rbuf=inb[p:p + 1]):
                        pass
            return inb.tolist()

        res, _ = run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0]

    def test_exceeding_bound_rejected(self):
        def prog(env):
            out = np.arange(4.0)
            inb = np.zeros(4)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 count=1, max_comm_iter=2):
                for p in range(4):
                    with comm_p2p(env, sbuf=out[p:p + 1],
                                  rbuf=inb[p:p + 1]):
                        pass

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)
        assert "max_comm_iter" in str(ei.value.original)

    def test_bound_resets_per_region_entry(self):
        def prog(env):
            for _ in range(3):  # re-entering resets the counter
                out = np.arange(2.0)
                inb = np.zeros(2)
                with comm_parameters(env, sender=0, receiver=1,
                                     sendwhen=env.rank == 0,
                                     receivewhen=env.rank == 1,
                                     count=1, max_comm_iter=2):
                    for p in range(2):
                        with comm_p2p(env, sbuf=out[p:p + 1],
                                      rbuf=inb[p:p + 1]):
                            pass
            return "ok"

        res, _ = run(2, prog)
        assert res.values == ["ok", "ok"]


class TestRegionStateIsolation:
    def test_states_are_per_rank(self):
        """Rank 0's open region must not leak into rank 1's stack."""
        def prog(env):
            if env.rank == 0:
                region = CommParameters(env, sender=0, receiver=1)
                region.__enter__()
                env.compute(1.0)
                region.__exit__(None, None, None)
                return None
            from repro.core.region import RegionState
            return len(RegionState.of(env).stack)

        res, _ = run(2, prog)
        assert res.values[1] == 0

    def test_fresh_engine_fresh_state(self):
        """Directive state never leaks across engine runs."""
        def prog(env):
            dst = np.zeros(1)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1,
                                 place_sync="BEGIN_NEXT_PARAM_REGION"):
                with comm_p2p(env, sbuf=np.ones(1), rbuf=dst):
                    pass
            comm_flush(env)
            return dst[0]

        for _ in range(2):  # second run must behave identically
            res, _ = run(2, prog)
            assert res.values[1] == 1.0
