"""Incremental adoption: directives coexist with raw MPI in one code.

The abstract's deployment story: communication patterns "can be
expressed at higher levels of abstraction and *incrementally added to
existing MPI applications*". That requires the generated traffic to be
invisible to the surrounding hand-written MPI — no tag collisions, no
wildcard stealing, no ordering interference.
"""

import numpy as np
import pytest

from repro import mpi
from repro.core import comm_p2p, comm_parameters
from repro.netmodel import zero_model
from repro.sim import Engine


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        comm = mpi.init(env, model)
        return fn(env, comm)

    return eng.run(main), eng


class TestCoexistence:
    def test_directive_between_raw_send_recv(self):
        """Raw MPI before and after a directive region, same peers."""
        def prog(env, comm):
            raw1, raw2 = np.zeros(1), np.zeros(1)
            dir_dst = np.zeros(1)
            if env.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=0)
                with comm_p2p(env, sender=0, receiver=1,
                              sendwhen=True, receivewhen=False,
                              sbuf=np.array([2.0]), rbuf=dir_dst):
                    pass
                comm.Send(np.array([3.0]), dest=1, tag=0)
                return None
            comm.Recv(raw1, source=0, tag=0)
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=False, receivewhen=True,
                          sbuf=np.zeros(1), rbuf=dir_dst):
                pass
            comm.Recv(raw2, source=0, tag=0)
            return (raw1[0], dir_dst[0], raw2[0])

        res, _ = run(2, prog)
        assert res.values[1] == (1.0, 2.0, 3.0)

    def test_wildcard_recv_never_steals_directive_traffic(self):
        """A pending ANY_SOURCE/ANY_TAG user receive must not match
        directive-generated messages."""
        def prog(env, comm):
            user = np.zeros(1)
            dir_dst = np.zeros(1)
            if env.rank == 1:
                req = comm.Irecv(user, source=mpi.ANY_SOURCE,
                                 tag=mpi.ANY_TAG)
                with comm_p2p(env, sender=0, receiver=1,
                              sendwhen=False, receivewhen=True,
                              sbuf=np.zeros(1), rbuf=dir_dst):
                    pass
                comm.Wait(req)
                return (user[0], dir_dst[0])
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=True, receivewhen=False,
                          sbuf=np.array([7.0]), rbuf=np.zeros(1)):
                pass
            comm.Send(np.array([9.0]), dest=1, tag=42)
            return None

        res, _ = run(2, prog)
        assert res.values[1] == (9.0, 7.0)

    def test_directive_tags_never_collide_with_user_tags(self):
        """Directive sequence numbers start at 0 — the same values user
        code might use as tags — and still never cross-match."""
        def prog(env, comm):
            user = np.zeros(1)
            dir_dst = np.zeros(1)
            if env.rank == 0:
                comm.Send(np.array([5.0]), dest=1, tag=0)  # user tag 0
                with comm_p2p(env, sender=0, receiver=1,  # dir seq 0
                              sendwhen=True, receivewhen=False,
                              sbuf=np.array([6.0]), rbuf=dir_dst):
                    pass
                return None
            with comm_p2p(env, sender=0, receiver=1,
                          sendwhen=False, receivewhen=True,
                          sbuf=np.zeros(1), rbuf=dir_dst):
                pass
            comm.Recv(user, source=0, tag=0)
            return (user[0], dir_dst[0])

        res, _ = run(2, prog)
        assert res.values[1] == (5.0, 6.0)

    def test_collectives_between_directive_regions(self):
        def prog(env, comm):
            dir_dst = np.zeros(2)
            bc = (np.arange(2.0) if env.rank == 0 else np.zeros(2))
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                with comm_p2p(env, sbuf=np.full(2, 4.0), rbuf=dir_dst):
                    pass
            comm.Bcast(bc, root=0)
            total = np.zeros(1)
            comm.Allreduce(np.array([float(env.rank)]), total)
            return (dir_dst.tolist() if env.rank == 1 else None,
                    bc.tolist(), total[0])

        res, _ = run(3, prog)
        assert res.values[1][0] == [4.0, 4.0]
        assert all(v[1] == [0.0, 1.0] for v in res.values)
        assert all(v[2] == 3.0 for v in res.values)

    def test_mixed_targets_within_one_region(self):
        """Different instances of one region may target different
        libraries (Section I: 'some regions may use MPI and others
        SHMEM')."""
        from repro import shmem

        def prog(env, comm):
            sh = shmem.init(env)
            sym = sh.malloc(2, np.float64)
            plain = np.zeros(2)
            with comm_parameters(env, sender=0, receiver=1,
                                 sendwhen=env.rank == 0,
                                 receivewhen=env.rank == 1):
                with comm_p2p(env, sbuf=np.full(2, 1.0), rbuf=plain,
                              target="TARGET_COMM_MPI_2SIDE"):
                    pass
                with comm_p2p(env, sbuf=np.full(2, 2.0), rbuf=sym,
                              target="TARGET_COMM_SHMEM"):
                    pass
            return (plain.tolist(), sym.data.tolist())

        res, eng = run(2, prog)
        assert res.values[1] == ([1.0, 1.0], [2.0, 2.0])
        assert eng.stats.messages["mpi2s"] == 1
        assert eng.stats.messages["shmem"] == 1
