"""Clause validation rules from Section III-B."""

import pytest

from repro.core.clauses import (
    DEFAULT_TARGET,
    ClauseSet,
    SyncPlacement,
    Target,
)
from repro.errors import ClauseError


class TestBuild:
    def test_unknown_clause_rejected(self):
        with pytest.raises(ClauseError, match="unknown clause"):
            ClauseSet.build(directive="p2p", sender=0, receiver=1,
                            frobnicate=2)

    def test_parameters_only_clauses_rejected_on_p2p(self):
        with pytest.raises(ClauseError, match="comm_parameters"):
            ClauseSet.build(directive="p2p", place_sync="END_PARAM_REGION")
        with pytest.raises(ClauseError, match="comm_parameters"):
            ClauseSet.build(directive="p2p", max_comm_iter=5)

    def test_parameters_accepts_place_sync_and_max_iter(self):
        cs = ClauseSet.build(directive="parameters",
                             place_sync="END_PARAM_REGION",
                             max_comm_iter=10)
        assert cs.place_sync is SyncPlacement.END_PARAM_REGION
        assert cs.max_comm_iter == 10

    def test_unknown_directive_kind_rejected(self):
        with pytest.raises(ClauseError):
            ClauseSet.build(directive="collective")

    def test_sendwhen_requires_receivewhen(self):
        """'they both must be present or both be omitted'"""
        with pytest.raises(ClauseError, match="both"):
            ClauseSet.build(directive="p2p", sendwhen=True)
        with pytest.raises(ClauseError, match="both"):
            ClauseSet.build(directive="p2p", receivewhen=False)
        ClauseSet.build(directive="p2p", sendwhen=True, receivewhen=False)

    def test_target_keywords(self):
        for kw, member in [
            ("TARGET_COMM_MPI_1SIDE", Target.MPI_1SIDE),
            ("TARGET_COMM_MPI_2SIDE", Target.MPI_2SIDE),
            ("TARGET_COMM_SHMEM", Target.SHMEM),
        ]:
            cs = ClauseSet.build(directive="p2p", target=kw)
            assert cs.target is member

    def test_bad_target_rejected(self):
        with pytest.raises(ClauseError, match="target"):
            ClauseSet.build(directive="p2p", target="TARGET_COMM_PVM")

    def test_place_sync_keywords(self):
        for kw in ("END_PARAM_REGION", "BEGIN_NEXT_PARAM_REGION",
                   "END_ADJ_PARAM_REGIONS"):
            cs = ClauseSet.build(directive="parameters", place_sync=kw)
            assert cs.place_sync.value == kw

    def test_bad_place_sync_rejected(self):
        with pytest.raises(ClauseError):
            ClauseSet.build(directive="parameters", place_sync="WHEREVER")

    def test_count_must_be_nonnegative_int(self):
        ClauseSet.build(directive="p2p", count=0)
        with pytest.raises(ClauseError):
            ClauseSet.build(directive="p2p", count=-1)
        with pytest.raises(ClauseError):
            ClauseSet.build(directive="p2p", count=1.5)
        with pytest.raises(ClauseError):
            ClauseSet.build(directive="p2p", count=True)

    def test_max_comm_iter_positive(self):
        with pytest.raises(ClauseError):
            ClauseSet.build(directive="parameters", max_comm_iter=0)


class TestMerge:
    def test_region_clauses_apply_to_instances(self):
        region = ClauseSet.build(directive="parameters", sender=1,
                                 receiver=2, count=8)
        inst = ClauseSet.build(directive="p2p", sbuf="S", rbuf="R")
        merged = region.merged_into(inst)
        assert merged.sender == 1
        assert merged.receiver == 2
        assert merged.count == 8
        assert merged.sbuf == "S"

    def test_instance_overrides_region(self):
        region = ClauseSet.build(directive="parameters", sender=1,
                                 receiver=2)
        inst = ClauseSet.build(directive="p2p", receiver=7, sbuf="S",
                               rbuf="R")
        merged = region.merged_into(inst)
        assert merged.receiver == 7
        assert merged.sender == 1

    def test_region_only_clauses_never_merge_down(self):
        region = ClauseSet.build(directive="parameters",
                                 place_sync="END_PARAM_REGION",
                                 max_comm_iter=4)
        merged = region.merged_into(ClauseSet.build(directive="p2p"))
        assert not merged.has("place_sync")
        assert not merged.has("max_comm_iter")

    def test_require_p2p_complete(self):
        full = ClauseSet.build(directive="p2p", sender=0, receiver=1,
                               sbuf="S", rbuf="R")
        full.require_p2p_complete()
        partial = ClauseSet.build(directive="p2p", sender=0, sbuf="S")
        with pytest.raises(ClauseError, match="required"):
            partial.require_p2p_complete()


class TestDefaults:
    def test_default_target_is_two_sided_mpi(self):
        cs = ClauseSet.build(directive="p2p")
        assert cs.effective_target is DEFAULT_TARGET is Target.MPI_2SIDE

    def test_absent_when_clauses_mean_everyone(self):
        cs = ClauseSet.build(directive="p2p")
        assert cs.effective_sendwhen is True
        assert cs.effective_receivewhen is True

    def test_present_when_clauses_respected(self):
        cs = ClauseSet.build(directive="p2p", sendwhen=False,
                             receivewhen=True)
        assert cs.effective_sendwhen is False
        assert cs.effective_receivewhen is True

    def test_with_clauses_copy(self):
        cs = ClauseSet.build(directive="p2p", sender=1)
        cs2 = cs.with_clauses(receiver=2)
        assert cs2.sender == 1 and cs2.receiver == 2
        assert not cs.has("receiver")

    def test_present_dict(self):
        cs = ClauseSet.build(directive="p2p", sender=3, count=5)
        assert cs.present() == {"sender": 3, "count": 5}
