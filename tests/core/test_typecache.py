"""The derived-datatype cache (automatic datatype handling)."""

import numpy as np
import pytest

from repro import mpi
from repro.core.lower.typecache import TypeCache, _triples_from_dtype
from repro.dtypes import extract_composite
from repro.netmodel import uniform_model, zero_model
from repro.sim import Engine


def run(nprocs, fn, model=None):
    model = model or zero_model()
    eng = Engine(nprocs)

    def main(env):
        comm = mpi.init(env, model)
        return fn(comm)

    return eng.run(main), eng


class TestTriplesFromDtype:
    def test_matches_composite_layout(self):
        """Flattening a numpy dtype agrees with the dtypes engine's
        flattening of the equivalent composite."""
        comp = extract_composite("S", {
            "n": "int", "x": "double", "tag": ("char", 5),
            "v": ("double", 3),
        })
        bl, disp, types = _triples_from_dtype(comp.to_numpy_dtype())
        ref = comp.triples()
        assert tuple(bl) == ref.blocklengths
        assert tuple(disp) == ref.displacements
        assert [t.name for t in types] == \
            [p.mpi_name for p in ref.mpi_types]

    def test_nested_struct_flattened(self):
        inner = np.dtype([("x", "f8")], align=True)
        outer = np.dtype([("n", "i4"), ("i", inner, (2,))], align=True)
        bl, disp, types = _triples_from_dtype(outer)
        assert len(bl) == 3  # n + two inner.x copies
        assert disp[1] == 8 and disp[2] == 16

    def test_unsigned_and_short_fallbacks(self):
        dt = np.dtype([("a", "u4"), ("b", "i2")])
        _, _, types = _triples_from_dtype(dt)
        assert types[0].name == "MPI_INT"   # same-width transfer type
        assert types[1].name == "MPI_CHAR"


class TestCache:
    def test_created_once_per_rank_per_dtype(self):
        dt = np.dtype([("a", "i4"), ("b", "f8")], align=True)

        def prog(comm):
            cache = TypeCache.attach(comm.env.engine)
            first = cache.datatype_for(comm, dt)
            second = cache.datatype_for(comm, dt)
            return first is second

        res, eng = run(2, prog)
        assert all(res.values)
        assert eng.stats.datatype_ops["struct_created"] == 2  # per rank
        assert eng.stats.datatype_ops["struct_reused"] == 2

    def test_distinct_dtypes_distinct_entries(self):
        a = np.dtype([("x", "f8")])
        b = np.dtype([("y", "i4")])

        def prog(comm):
            cache = TypeCache.attach(comm.env.engine)
            return cache.datatype_for(comm, a) is \
                cache.datatype_for(comm, b)

        res, eng = run(1, prog)
        assert res.values == [False]
        assert eng.stats.datatype_ops["struct_created"] == 2

    def test_extent_matches_dtype_itemsize(self):
        dt = np.dtype([("a", "i4"), ("b", "f8")], align=True)

        def prog(comm):
            cache = TypeCache.attach(comm.env.engine)
            return cache.datatype_for(comm, dt).size

        res, _ = run(1, prog)
        assert res.values[0] == dt.itemsize

    def test_creation_cost_charged_once(self):
        dt = np.dtype([("a", "i4"), ("b", "f8", (4,))], align=True)
        model = uniform_model()

        def prog(comm):
            cache = TypeCache.attach(comm.env.engine)
            t0 = comm.env.now
            cache.datatype_for(comm, dt)
            first = comm.env.now - t0
            t0 = comm.env.now
            cache.datatype_for(comm, dt)
            return (first, comm.env.now - t0)

        res, _ = run(1, prog, model=model)
        first, second = res.values[0]
        assert first == pytest.approx(model.struct_create_cost(2))
        assert second == 0.0
