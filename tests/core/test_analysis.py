"""Compiler analyses: independence, sync planning, inference, dataflow."""

import numpy as np
import pytest

from repro.core.analysis import (
    arrays_independent,
    buffer_names,
    classify_pattern,
    comm_graph,
    infer_count_static,
    infer_element_type,
    names_independent,
    overlap_legal,
    plan_synchronization,
    validate_matching,
)
from repro.core.analysis.independence import (
    base_identifier,
    independent_groups,
)
from repro.core.analysis.infer import shmem_call_for
from repro.core.clauses import SyncPlacement
from repro.core.ir import (
    BufferDecl,
    ClauseExprs,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.dtypes import DOUBLE, INT, CompositeType, Field
from repro.errors import ClauseError


def p2p(sbuf, rbuf, body=None, **exprs):
    cl = ClauseExprs(exprs={k: str(v) for k, v in exprs.items()},
                     sbuf=list(sbuf), rbuf=list(rbuf))
    return P2PNode(clauses=cl, body=body or [])


class TestBaseIdentifier:
    @pytest.mark.parametrize("expr,base", [
        ("buf1", "buf1"),
        ("&buf1[p]", "buf1"),
        ("buf2[3]", "buf2"),
        ("&atom.evec", "atom"),
        ("local->atom", "local"),
    ])
    def test_strips_decorations(self, expr, base):
        assert base_identifier(expr) == base


class TestIndependence:
    def test_disjoint_names_independent(self):
        a = p2p(["x"], ["y"])
        b = p2p(["u"], ["v"])
        assert names_independent(a.clauses, b.clauses)

    def test_shared_name_dependent(self):
        a = p2p(["x"], ["y"])
        b = p2p(["y"], ["z"])
        assert not names_independent(a.clauses, b.clauses)

    def test_indexed_same_base_dependent(self):
        a = p2p(["&buf[0]"], ["out"])
        b = p2p(["&buf[1]"], ["out2"])
        assert not names_independent(a.clauses, b.clauses)

    def test_arrays_independent_runtime(self):
        base = np.zeros(10)
        assert arrays_independent([base[:5]], [np.zeros(3)])
        assert not arrays_independent([base[:5]], [base[4:]])

    def test_independent_groups_partition(self):
        a = p2p(["a"], ["b"])
        b = p2p(["c"], ["d"])
        c = p2p(["a"], ["e"])  # depends on group {a, b}
        groups = independent_groups([a, b, c])
        assert [len(g) for g in groups] == [2, 1]

    def test_buffer_names_collects_both_sides(self):
        node = p2p(["vr", "rhotot"], ["vr", "rhotot"])
        assert buffer_names(node.clauses) == {"vr", "rhotot"}


class TestSyncPlanning:
    def region(self, instances, place_sync=None):
        cl = ClauseExprs()
        cl.place_sync = place_sync
        return ParamRegionNode(clauses=cl, body=list(instances))

    def test_end_param_region_default(self):
        r = self.region([p2p(["a"], ["b"]), p2p(["c"], ["d"])])
        prog = Program(nodes=[r])
        plan = plan_synchronization(prog)
        assert len(plan.points) == 1
        assert plan.points[0].position == "end"
        assert plan.points[0].covered_instances == 2
        assert plan.reduction_factor(prog) == 2.0

    def test_begin_next_region(self):
        r1 = self.region([p2p(["a"], ["b"])],
                         SyncPlacement.BEGIN_NEXT_PARAM_REGION)
        r2 = self.region([p2p(["c"], ["d"])])
        plan = plan_synchronization(Program(nodes=[r1, r2]))
        positions = [(pt.position, pt.region) for pt in plan.points]
        assert ("begin", r2) in positions
        assert ("end", r2) in positions

    def test_begin_next_without_next_degrades_to_end(self):
        r1 = self.region([p2p(["a"], ["b"])],
                         SyncPlacement.BEGIN_NEXT_PARAM_REGION)
        plan = plan_synchronization(Program(nodes=[r1]))
        assert len(plan.points) == 1
        assert plan.points[0].position == "end"

    def test_end_adj_chain_one_sync(self):
        rs = [self.region([p2p([f"a{i}"], [f"b{i}"])],
                          SyncPlacement.END_ADJ_PARAM_REGIONS)
              for i in range(3)]
        plan = plan_synchronization(Program(nodes=rs))
        assert len(plan.points) == 1
        assert plan.points[0].region is rs[-1]
        assert plan.points[0].covered_instances == 3

    def test_end_adj_chain_broken_by_raw_code(self):
        r1 = self.region([p2p(["a"], ["b"])],
                         SyncPlacement.END_ADJ_PARAM_REGIONS)
        code = RawCode(lines=["x = compute();"])
        r2 = self.region([p2p(["c"], ["d"])],
                         SyncPlacement.END_ADJ_PARAM_REGIONS)
        plan = plan_synchronization(Program(nodes=[r1, code, r2]))
        assert len(plan.points) == 2

    def test_dependent_instances_force_split(self):
        r = self.region([p2p(["a"], ["b"]), p2p(["b"], ["c"])])
        prog = Program(nodes=[r])
        plan = plan_synchronization(prog)
        assert plan.forced_splits[id(r)] == 1
        assert plan.total_sync_calls == 2

    def test_reduction_factor_zero_sync_points(self):
        """A program with no communication plans no syncs; the factor
        must not divide by zero (0 naive / clamped 1 planned = 0)."""
        prog = Program(nodes=[RawCode(lines=["x = 1;"])])
        plan = plan_synchronization(prog)
        assert plan.points == []
        assert plan.total_sync_calls == 0
        assert plan.reduction_factor(prog) == 0.0

    def test_standalone_p2p_syncs_individually(self):
        node = p2p(["a"], ["b"])
        plan = plan_synchronization(Program(nodes=[node]))
        assert len(plan.points) == 1
        point = plan.points[0]
        assert point.position == "end"
        assert point.node is node
        assert point.covered_instances == 1
        assert point.p2p_instances() == [node]

    def test_standalone_point_region_accessor_rejected(self):
        """`.region` is only defined for region-attached points; a
        standalone comm_p2p point directs callers to `.node`."""
        plan = plan_synchronization(Program(nodes=[p2p(["a"], ["b"])]))
        with pytest.raises(TypeError, match="standalone"):
            plan.points[0].region

    def test_region_point_accessors_consistent(self):
        r = self.region([p2p(["a"], ["b"]), p2p(["c"], ["d"])])
        plan = plan_synchronization(Program(nodes=[r]))
        point = plan.points[0]
        assert point.region is r
        assert point.node is r
        assert point.p2p_instances() == r.p2p_instances()


class TestInference:
    def decls(self):
        return {
            "big": BufferDecl("big", DOUBLE, length=100),
            "small": BufferDecl("small", DOUBLE, length=10),
            "p": BufferDecl("p", DOUBLE, is_pointer=True),
            "n": BufferDecl("n", INT, length=4),
        }

    def test_explicit_count_wins(self):
        node = p2p(["big"], ["small"], count="7")
        assert infer_count_static(node.clauses, self.decls()) == "7"

    def test_smallest_array_inferred(self):
        node = p2p(["big"], ["small"])
        assert infer_count_static(node.clauses, self.decls()) == "10"

    def test_indexed_buffer_uses_base_declaration(self):
        """`&buf[p]`-style expressions resolve to the base array's
        declaration for length inference."""
        node = p2p(["&big[p]"], ["&small[p]"])
        assert infer_count_static(node.clauses, self.decls()) == "10"

    def test_indexed_buffer_element_type(self):
        node = p2p(["&big[3]"], ["small"])
        assert infer_element_type(node.clauses, self.decls()) is DOUBLE

    def test_pointer_only_requires_count(self):
        node = p2p(["p"], ["p"])
        with pytest.raises(ClauseError, match="count"):
            infer_count_static(node.clauses, self.decls())

    def test_undeclared_buffer_rejected(self):
        node = p2p(["ghost"], ["small"])
        with pytest.raises(ClauseError, match="declaration"):
            infer_count_static(node.clauses, self.decls())

    def test_element_type_consistent(self):
        node = p2p(["big"], ["small"])
        assert infer_element_type(node.clauses, self.decls()) is DOUBLE

    def test_element_type_mismatch_rejected(self):
        node = p2p(["big"], ["n"])
        with pytest.raises(ClauseError, match="mix"):
            infer_element_type(node.clauses, self.decls())

    def test_shmem_call_selection(self):
        assert shmem_call_for(DOUBLE) == "shmem_double_put"
        assert shmem_call_for(INT) == "shmem_put32"
        s = CompositeType("S", [Field("x", DOUBLE)])
        assert shmem_call_for(s) == "shmem_putmem"


class TestDataflow:
    def ring_clauses(self):
        return ClauseExprs(
            exprs={"sender": "(rank-1+nprocs)%nprocs",
                   "receiver": "(rank+1)%nprocs"},
            sbuf=["b1"], rbuf=["b2"])

    def test_ring_graph(self):
        g = comm_graph(self.ring_clauses(), nprocs=5)
        assert len(g.edges) == 5
        assert (0, 1) in g.edges and (4, 0) in g.edges
        assert validate_matching(g) == []
        assert classify_pattern(g) == "ring"

    def test_even_odd_graph(self):
        cl = ClauseExprs(
            exprs={"sender": "rank-1", "receiver": "rank+1",
                   "sendwhen": "rank%2==0", "receivewhen": "rank%2==1"},
            sbuf=["b1"], rbuf=["b2"])
        g = comm_graph(cl, nprocs=4)
        assert g.edges == [(0, 1), (2, 3)]
        assert validate_matching(g) == []
        assert classify_pattern(g) == "pairwise"

    def test_fan_out_classified(self):
        cl = ClauseExprs(
            exprs={"sender": "0", "receiver": "rank",
                   "sendwhen": "rank==0 && nprocs>1",
                   "receivewhen": "rank!=0"},
            sbuf=["b1"], rbuf=["b2"])
        # Note: rank 0 'sends to itself' pattern avoided by receiver
        # evaluating to each non-zero rank in separate instances; here
        # we model the hub with one edge per... this single directive
        # has rank 0 send once. Validate accordingly.
        g = comm_graph(cl, nprocs=4)
        assert g.senders == {0}

    def test_mismatched_sender_flagged(self):
        cl = ClauseExprs(
            exprs={"sender": "0", "receiver": "rank+1",
                   "sendwhen": "rank==0", "receivewhen": "rank==2"},
            sbuf=["b1"], rbuf=["b2"])
        g = comm_graph(cl, nprocs=3)
        issues = validate_matching(g)
        kinds = {i.kind for i in issues}
        assert "unreceived-send" in kinds or "unsatisfied-receive" in kinds

    def test_invalid_destination_flagged(self):
        cl = ClauseExprs(
            exprs={"sender": "rank-1", "receiver": "rank+1"},
            sbuf=["b1"], rbuf=["b2"])
        g = comm_graph(cl, nprocs=3)
        issues = validate_matching(g)
        assert any(i.kind == "invalid-destination" for i in issues)
        assert any(i.kind == "invalid-source" for i in issues)

    def test_extra_vars(self):
        cl = ClauseExprs(
            exprs={"sender": "root", "receiver": "root",
                   "sendwhen": "rank!=root", "receivewhen": "rank==root"},
            sbuf=["b1"], rbuf=["b2"])
        g = comm_graph(cl, nprocs=4, extra_vars={"root": 2})
        assert classify_pattern(g) == "fan-in"

    def test_incomplete_clauses_rejected(self):
        with pytest.raises(ClauseError):
            comm_graph(ClauseExprs(exprs={"sender": "0"}), nprocs=2)


class TestOverlap:
    def test_empty_body_legal(self):
        node = p2p(["a"], ["b"])
        assert overlap_legal(node).legal

    def test_independent_body_legal(self):
        node = p2p(["a"], ["b"],
                   body=[RawCode(lines=["compute(x, y);"])])
        assert overlap_legal(node).legal

    def test_body_touching_rbuf_illegal(self):
        node = p2p(["a"], ["b"],
                   body=[RawCode(lines=["use(b);"])])
        v = overlap_legal(node)
        assert not v.legal
        assert "b" in v.reason

    def test_body_touching_sbuf_illegal(self):
        node = p2p(["a"], ["b"],
                   body=[RawCode(lines=["a[0] = 1;"])])
        assert not overlap_legal(node).legal

    def test_substring_name_not_confused(self):
        node = p2p(["a"], ["b"],
                   body=[RawCode(lines=["about = 1; ab = 2;"])])
        assert overlap_legal(node).legal


class TestPlanEdgeCases:
    """Degenerate shapes the planner must not trip over."""

    def region(self, instances, place_sync=None):
        cl = ClauseExprs()
        cl.place_sync = place_sync
        return ParamRegionNode(clauses=cl, body=list(instances))

    def test_empty_region_emits_no_sync_point(self):
        prog = Program(nodes=[self.region([])])
        plan = plan_synchronization(prog)
        assert plan.points == []
        assert plan.total_sync_calls == 0

    def test_empty_adj_chain_emits_no_sync_point(self):
        chain = [self.region([], SyncPlacement.END_ADJ_PARAM_REGIONS),
                 self.region([], SyncPlacement.END_ADJ_PARAM_REGIONS)]
        plan = plan_synchronization(Program(nodes=chain))
        assert plan.points == []

    def test_empty_deferral_emits_no_begin_point(self):
        r1 = self.region([], SyncPlacement.BEGIN_NEXT_PARAM_REGION)
        r2 = self.region([p2p(["a"], ["b"])])
        plan = plan_synchronization(Program(nodes=[r1, r2]))
        assert [(pt.position, pt.node) for pt in plan.points] == \
            [("end", r2)]

    def test_single_directive_place_sync_at_region_end(self):
        node = p2p(["a"], ["b"])
        r = self.region([node], SyncPlacement.END_PARAM_REGION)
        plan = plan_synchronization(Program(nodes=[r]))
        [point] = plan.points
        assert point.position == "end"
        assert point.node is r
        assert point.covered_instances == 1
        assert point.p2p_instances() == [node]
        assert plan.forced_splits == {}

    def test_nonempty_points_all_cover_instances(self):
        mixed = [
            self.region([]),
            self.region([p2p(["a"], ["b"])]),
            self.region([], SyncPlacement.BEGIN_NEXT_PARAM_REGION),
            self.region([]),
        ]
        plan = plan_synchronization(Program(nodes=mixed))
        assert all(pt.covered_instances > 0 for pt in plan.points)


class TestSingleRankGraphs:
    """nprocs=1: every transfer degenerates to a self-loop or nothing."""

    def test_ring_collapses_to_self_loop(self):
        node = p2p(["a"], ["b"],
                   sender="(rank-1+nprocs)%nprocs",
                   receiver="(rank+1)%nprocs")
        g = comm_graph(node.clauses, nprocs=1)
        assert g.edges == [(0, 0)]
        assert g.expects == {0: 0}
        assert validate_matching(g) == []

    def test_guarded_shift_goes_silent(self):
        node = p2p(["a"], ["b"], sender="rank-1", receiver="rank+1",
                   sendwhen="rank<nprocs-1", receivewhen="rank>0")
        g = comm_graph(node.clauses, nprocs=1)
        assert g.edges == []
        assert g.expects == {}
        assert classify_pattern(g) == "none"
        assert validate_matching(g) == []

    def test_overlap_verdict_is_world_size_independent(self):
        node = p2p(["a"], ["b"],
                   body=[RawCode(lines=["use(b);"])],
                   sender="0", receiver="0")
        assert not overlap_legal(node).legal
