"""The pragma printer: parse -> print -> parse is a fixpoint.

``Program.to_source`` (and ``print_program``) is the substrate the
proof-carrying fix engine rewrites through: every advisor rewrite is
applied to the IR, printed, and re-parsed before the verifier and
simulation gates run. These tests pin the printer's contract — printing
a parsed program and re-parsing it reproduces the same program, and a
second print is byte-identical to the first (canonical form).
"""

import glob
import os

import pytest

from repro.core.clauses import SyncPlacement, Target
from repro.core.ir import (
    BufferDecl,
    ClauseExprs,
    P2PNode,
    ParamRegionNode,
    Program,
    RawCode,
)
from repro.core.pragma import parse_program, print_program

_EXAMPLES = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "examples", "pragmas")

EXAMPLE_FILES = sorted(
    glob.glob(os.path.join(_EXAMPLES, "*.c"))
    + glob.glob(os.path.join(_EXAMPLES, "slow", "*.c")))


def _shape(program: Program) -> list:
    """Structural fingerprint: node kinds, clauses, nesting, decls."""
    def node_shape(node):
        if isinstance(node, RawCode):
            return ("raw", tuple(ln.strip() for ln in node.lines
                                 if ln.strip()))
        if isinstance(node, P2PNode):
            return ("p2p", _clauses(node.clauses),
                    tuple(node_shape(b) for b in node.body))
        assert isinstance(node, ParamRegionNode)
        return ("region", _clauses(node.clauses),
                tuple(node_shape(b) for b in node.body))

    def _clauses(c: ClauseExprs):
        return (tuple(sorted(c.exprs.items())), tuple(c.sbuf),
                tuple(c.rbuf), c.target, c.place_sync)

    decls = {name: (d.ctype.c_name, d.length)
             for name, d in program.decls.items()}
    return [decls, [node_shape(n) for n in program.nodes]]


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES,
    ids=[os.path.relpath(p, _EXAMPLES) for p in EXAMPLE_FILES])
def test_examples_round_trip(path):
    with open(path, encoding="utf-8") as fh:
        source = fh.read()
    prog1 = parse_program(source)
    printed1 = print_program(prog1)
    prog2 = parse_program(printed1)
    printed2 = print_program(prog2)
    assert _shape(prog1) == _shape(prog2)
    assert printed1 == printed2  # printing is idempotent


def test_catalog_round_trip():
    """Every printable pattern-catalog entry survives the round trip."""
    from repro.core.analysis.independence import base_identifier
    from repro.dtypes.primitives import DOUBLE
    from repro.errors import ReproError
    from repro.patterns.catalog import PATTERNS

    checked = 0
    for name, spec in sorted(PATTERNS.items()):
        clauses = spec.clauses()
        if clauses is None:
            continue
        program = Program(nodes=[P2PNode(clauses=clauses, line=1)])
        for expr in (*clauses.sbuf, *clauses.rbuf):
            base = base_identifier(expr)
            program.decls.setdefault(
                base, BufferDecl(base, DOUBLE, length=1024))
        decls = "\n".join(f"double {b}[1024];"
                          for b in sorted(program.decls))
        source = f"{decls}\n\n{program.to_source()}"
        try:
            prog1 = parse_program(source)
        except ReproError:
            continue  # parameters-only clause on a bare directive
        printed = print_program(prog1)
        prog2 = parse_program(printed)
        assert _shape(prog1) == _shape(prog2), f"catalog:{name}"
        assert print_program(prog2) == printed, f"catalog:{name}"
        checked += 1
    assert checked >= 5  # the catalog's static entries


def test_clause_order_is_canonical():
    src = """\
double a[4];
double b[4];
#pragma comm_p2p rbuf(b) receiver(rank+1) count(4) sbuf(a) sender(rank-1)
"""
    printed = print_program(parse_program(src))
    assert ("#pragma comm_p2p sender(rank-1) receiver(rank+1) "
            "sbuf(a) rbuf(b) count(4)") in printed


def test_region_always_braced():
    """A brace-less region body must print braced — otherwise the
    reparse would capture the *next* statement into the region."""
    src = """\
double a[4];
double b[4];
#pragma comm_parameters sender(rank-1) receiver(rank+1) sbuf(a) rbuf(b)
{
    #pragma comm_p2p
}
after();
"""
    prog = parse_program(src)
    printed = print_program(prog)
    reparsed = parse_program(printed)
    assert len(reparsed.regions()) == 1
    # after() stays OUTSIDE the region
    region = reparsed.regions()[0]
    body_text = region.to_source()
    assert "after()" not in body_text


def test_target_and_place_sync_print_enum_values():
    clauses = ClauseExprs(
        exprs={"sender": "rank-1", "receiver": "rank+1"},
        sbuf=["a"], rbuf=["b"],
        target=Target.SHMEM,
        place_sync=SyncPlacement.END_PARAM_REGION)
    node = ParamRegionNode(clauses=clauses, body=[], line=1)
    text = node.to_source()
    assert "target(TARGET_COMM_SHMEM)" in text
    assert "place_sync(END_PARAM_REGION)" in text


def test_empty_p2p_prints_bare_pragma():
    src = """\
double a[4];
double b[4];
#pragma comm_p2p sender(rank-1) receiver(rank+1) sbuf(a) rbuf(b)
"""
    printed = print_program(parse_program(src))
    assert printed.count("{") == 0
