"""The future-work comm_collective extension (paper Section V)."""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.core import comm_collective
from repro.errors import ClauseError, SimProcessError
from repro.netmodel import zero_model
from repro.sim import Engine


def run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs)

    def main(env):
        mpi.init(env, model)
        return fn(env)

    return eng.run(main), eng


class TestOneToMany:
    def test_mpi_broadcast(self):
        def prog(env):
            buf = np.arange(4.0) if env.rank == 0 else np.zeros(4)
            comm_collective(env, pattern="PATTERN_ONE_TO_MANY", buf=buf)
            return buf.tolist()

        res, _ = run(4, prog)
        assert all(v == [0, 1, 2, 3] for v in res.values)

    def test_shmem_broadcast(self):
        def prog(env):
            sh = shmem.init(env)
            buf = sh.malloc(3, np.float64)
            if env.rank == 1:
                buf.data[:] = 7.0
            comm_collective(env, pattern="PATTERN_ONE_TO_MANY", buf=buf,
                            root=1, target="TARGET_COMM_SHMEM")
            return buf.data.tolist()

        res, _ = run(3, prog)
        assert all(v == [7.0] * 3 for v in res.values)

    def test_group_subset(self):
        def prog(env):
            if env.rank == 3:
                return None  # not in the group; never reaches it
            buf = np.array([9.0]) if env.rank == 0 else np.zeros(1)
            comm_collective(env, pattern="PATTERN_ONE_TO_MANY", buf=buf,
                            group=[0, 1, 2])
            return buf[0]

        res, _ = run(4, prog)
        assert res.values[:3] == [9.0, 9.0, 9.0]


class TestManyToOne:
    def test_mpi_gather(self):
        def prog(env):
            buf = np.zeros((env.size, 2))
            buf[env.rank] = env.rank + 1
            comm_collective(env, pattern="PATTERN_MANY_TO_ONE", buf=buf,
                            root=0)
            return buf[:, 0].tolist() if env.rank == 0 else None

        res, _ = run(3, prog)
        assert res.values[0] == [1.0, 2.0, 3.0]

    def test_shmem_gather(self):
        def prog(env):
            sh = shmem.init(env)
            buf = sh.malloc((env.size, 2), np.float64)
            buf.data[env.rank] = float(env.rank + 10)
            comm_collective(env, pattern="PATTERN_MANY_TO_ONE", buf=buf,
                            root=0, target="TARGET_COMM_SHMEM")
            return buf.data[:, 0].tolist() if env.rank == 0 else None

        res, _ = run(3, prog)
        assert res.values[0] == [10.0, 11.0, 12.0]


class TestAllToAll:
    def test_mpi_alltoall(self):
        def prog(env):
            buf = np.array([[env.rank * 10.0 + j] for j in range(env.size)])
            comm_collective(env, pattern="PATTERN_ALL_TO_ALL", buf=buf)
            return buf[:, 0].tolist()

        res, _ = run(3, prog)
        for r, got in enumerate(res.values):
            assert got == [j * 10.0 + r for j in range(3)]

    def test_shmem_alltoall(self):
        def prog(env):
            sh = shmem.init(env)
            buf = sh.malloc((env.size, 1), np.float64)
            for j in range(env.size):
                buf.data[j] = env.rank * 10.0 + j
            comm_collective(env, pattern="PATTERN_ALL_TO_ALL", buf=buf,
                            target="TARGET_COMM_SHMEM")
            return buf.data[:, 0].tolist()

        res, _ = run(3, prog)
        for r, got in enumerate(res.values):
            assert got == [j * 10.0 + r for j in range(3)]


class TestValidation:
    def test_unknown_pattern_rejected(self):
        def prog(env):
            comm_collective(env, pattern="PATTERN_RING", buf=np.zeros(1))

        with pytest.raises(SimProcessError) as ei:
            run(1, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_root_outside_group_rejected(self):
        def prog(env):
            comm_collective(env, pattern="PATTERN_ONE_TO_MANY",
                            buf=np.zeros(1), root=5)

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)

    def test_shmem_requires_symmetric_buffer(self):
        def prog(env):
            comm_collective(env, pattern="PATTERN_ONE_TO_MANY",
                            buf=np.zeros(1), target="TARGET_COMM_SHMEM")

        with pytest.raises(SimProcessError) as ei:
            run(2, prog)
        assert isinstance(ei.value.original, ClauseError)
