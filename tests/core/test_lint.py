"""Whole-program directive linting."""

import pytest

from repro.core.analysis import lint_program
from repro.core.pragma import parse_program

CLEAN = """
double a[16]; double b[16]; double c[16]; double d[16];
int rank, nprocs;
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs)
{
#pragma comm_p2p sbuf(a) rbuf(b)
#pragma comm_p2p sbuf(c) rbuf(d)
}
"""

DEPENDENT = """
double a[16]; double b[16]; double c[16];
#pragma comm_parameters sender(0) receiver(1)
{
#pragma comm_p2p sbuf(a) rbuf(b)
#pragma comm_p2p sbuf(b) rbuf(c)
}
"""

BAD_OVERLAP = """
double a[16]; double b[16];
#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b)
{
    consume(b);
}
"""

BAD_MATCH = """
double a[16]; double b[16];
#pragma comm_p2p sender(0) receiver(rank+1) sendwhen(rank==0) receivewhen(rank==3) sbuf(a) rbuf(b)
"""

MISSING_DECL = """
double a[16];
#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(ghost)
"""


class TestLint:
    def test_clean_program_no_findings(self):
        report = lint_program(parse_program(CLEAN), nprocs=6)
        assert not report.errors
        assert not report.warnings
        assert report.n_directives == 2
        assert report.n_regions == 1
        assert report.sync_calls == 1
        assert report.sync_reduction == 2.0
        assert set(report.patterns.values()) == {"ring"}

    def test_dependent_buffers_warned(self):
        report = lint_program(parse_program(DEPENDENT))
        assert any("dependent buffer" in d.message
                   for d in report.warnings)
        assert report.sync_calls == 2

    def test_illegal_overlap_is_error(self):
        report = lint_program(parse_program(BAD_OVERLAP))
        assert any("illegal overlap" in d.message for d in report.errors)

    def test_matching_issue_warned(self):
        report = lint_program(parse_program(BAD_MATCH), nprocs=4)
        assert any("unreceived-send" in d.message or
                   "unsatisfied-receive" in d.message
                   for d in report.warnings)

    def test_missing_declaration_is_error(self):
        report = lint_program(parse_program(MISSING_DECL))
        assert any("declaration" in d.message for d in report.errors)

    def test_render_is_human_readable(self):
        report = lint_program(parse_program(CLEAN), nprocs=6)
        out = report.render()
        assert "2 comm_p2p in 1 region(s)" in out
        assert "pattern = ring" in out

    def test_extra_vars_forwarded(self):
        src = """
        double a[8]; double b[8];
        #pragma comm_p2p sender(root) receiver(root) sendwhen(rank!=root) receivewhen(rank==root) sbuf(a) rbuf(b)
        """
        report = lint_program(parse_program(src), nprocs=4,
                              extra_vars={"root": 1})
        assert list(report.patterns.values()) == ["fan-in"]
