"""Whole-program directive linting."""

import json

import pytest

from repro.core.analysis import (
    lint_program,
    render_json,
    render_sarif,
)
from repro.core.pragma import parse_program
from repro.errors import VerificationError

CLEAN = """
double a[16]; double b[16]; double c[16]; double d[16];
int rank, nprocs;
#pragma comm_parameters sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs)
{
#pragma comm_p2p sbuf(a) rbuf(b)
#pragma comm_p2p sbuf(c) rbuf(d)
}
"""

DEPENDENT = """
double a[16]; double b[16]; double c[16];
#pragma comm_parameters sender(0) receiver(1)
{
#pragma comm_p2p sbuf(a) rbuf(b)
#pragma comm_p2p sbuf(b) rbuf(c)
}
"""

BAD_OVERLAP = """
double a[16]; double b[16];
#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(b)
{
    consume(b);
}
"""

BAD_MATCH = """
double a[16]; double b[16];
#pragma comm_p2p sender(0) receiver(rank+1) sendwhen(rank==0) receivewhen(rank==3) sbuf(a) rbuf(b)
"""

MISSING_DECL = """
double a[16];
#pragma comm_p2p sender(0) receiver(1) sbuf(a) rbuf(ghost)
"""


class TestLint:
    def test_clean_program_no_findings(self):
        report = lint_program(parse_program(CLEAN), nprocs=6)
        assert not report.errors
        assert not report.warnings
        assert report.n_directives == 2
        assert report.n_regions == 1
        assert report.sync_calls == 1
        assert report.sync_reduction == 2.0
        assert set(report.patterns.values()) == {"ring"}

    def test_dependent_buffers_warned(self):
        report = lint_program(parse_program(DEPENDENT))
        assert any("dependent buffer" in d.message
                   for d in report.warnings)
        assert report.sync_calls == 2

    def test_illegal_overlap_is_error(self):
        report = lint_program(parse_program(BAD_OVERLAP))
        assert any("illegal overlap" in d.message for d in report.errors)

    def test_matching_issue_warned(self):
        report = lint_program(parse_program(BAD_MATCH), nprocs=4)
        assert any("unreceived-send" in d.message or
                   "unsatisfied-receive" in d.message
                   for d in report.warnings)

    def test_missing_declaration_is_error(self):
        report = lint_program(parse_program(MISSING_DECL))
        assert any("declaration" in d.message for d in report.errors)

    def test_render_is_human_readable(self):
        report = lint_program(parse_program(CLEAN), nprocs=6)
        out = report.render()
        assert "2 comm_p2p in 1 region(s)" in out
        assert "pattern = ring" in out

    def test_extra_vars_forwarded(self):
        src = """
        double a[8]; double b[8];
        #pragma comm_p2p sender(root) receiver(root) sendwhen(rank!=root) receivewhen(rank==root) sbuf(a) rbuf(b)
        """
        report = lint_program(parse_program(src), nprocs=4,
                              extra_vars={"root": 1})
        assert list(report.patterns.values()) == ["fan-in"]


CYCLE = """
double x[8];
double y[8];
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(0) receivewhen(1)
{
}
}
mid();
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(1) receivewhen(0)
{
}
}
"""


class TestDiagnosticCodes:
    def test_every_diagnostic_carries_a_code(self):
        for source in (DEPENDENT, BAD_OVERLAP, BAD_MATCH, MISSING_DECL,
                       CYCLE):
            report = lint_program(parse_program(source), nprocs=4)
            assert report.diagnostics, source
            assert all(d.code.startswith("CI")
                       for d in report.diagnostics)

    def test_deadlock_cycle_is_ci001_on_every_target(self):
        report = lint_program(parse_program(CYCLE), nprocs=4)
        [diag] = [d for d in report.errors if d.code == "CI001"]
        # Identical on all three lowerings: collapsed to target "*".
        assert diag.target == "*"

    def test_diagnostics_sorted_by_line_code_severity(self):
        report = lint_program(parse_program(CYCLE), nprocs=4)
        keys = [d.sort_key() for d in report.diagnostics]
        assert keys == sorted(keys)

    def test_sorting_is_stable_across_runs(self):
        render_a = lint_program(parse_program(CYCLE), nprocs=4).render()
        render_b = lint_program(parse_program(CYCLE), nprocs=4).render()
        assert render_a == render_b

    def test_require_clean_raises_with_listing(self):
        report = lint_program(parse_program(CYCLE), nprocs=4)
        with pytest.raises(VerificationError, match="CI001"):
            report.require_clean()
        lint_program(parse_program(CLEAN), nprocs=6).require_clean()


class TestRenderers:
    def test_json_roundtrips(self):
        report = lint_program(parse_program(BAD_OVERLAP), nprocs=4,
                              path="overlap.c")
        doc = json.loads(render_json([report]))
        [entry] = doc["reports"]
        assert entry["path"] == "overlap.c"
        assert any(d["code"] == "CI010"
                   for d in entry["diagnostics"])

    def test_sarif_shape_and_rules(self):
        report = lint_program(parse_program(CYCLE), nprocs=4,
                              path="cycle.c")
        log = json.loads(render_sarif([report]))
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        levels = {r["ruleId"]: r["level"] for r in run["results"]}
        assert "CI001" in rule_ids
        assert levels["CI001"] == "error"
        for result in run["results"]:
            [loc] = result["locations"]
            physical = loc["physicalLocation"]
            assert physical["artifactLocation"]["uri"] == "cycle.c"
            assert physical["region"]["startLine"] >= 1

    def test_sarif_of_clean_report_has_no_results(self):
        report = lint_program(parse_program(CLEAN), nprocs=6)
        log = json.loads(render_sarif([report]))
        assert log["runs"][0]["results"] == []


class TestSarifRuleRegistry:
    def test_every_registered_rule_is_emitted(self):
        from repro.core.analysis.codes import RULES
        log = json.loads(render_sarif(
            [lint_program(parse_program(CLEAN), nprocs=6)]))
        rules = {r["id"]: r
                 for r in log["runs"][0]["tool"]["driver"]["rules"]}
        assert set(rules) == set(RULES)

    def test_rules_carry_help_and_descriptions(self):
        from repro.core.analysis.codes import RULES, help_uri
        log = json.loads(render_sarif(
            [lint_program(parse_program(CLEAN), nprocs=6)]))
        levels = {"error": "error", "warning": "warning", "info": "note"}
        for entry in log["runs"][0]["tool"]["driver"]["rules"]:
            rule = RULES[entry["id"]]
            assert entry["helpUri"] == help_uri(rule.code)
            assert entry["name"] == rule.name
            assert entry["shortDescription"]["text"] == rule.summary
            level = entry["defaultConfiguration"]["level"]
            assert level == levels[rule.severity]

    def test_race_rules_present_with_error_level(self):
        from repro.core.analysis.codes import RACE_CODES
        log = json.loads(render_sarif(
            [lint_program(parse_program(CLEAN), nprocs=6)]))
        rules = {r["id"]: r
                 for r in log["runs"][0]["tool"]["driver"]["rules"]}
        for code in sorted(RACE_CODES):
            assert rules[code]["defaultConfiguration"]["level"] == "error"
