"""The translator and linter command-line tools."""

import json

import pytest

from repro.core.pragma.__main__ import main, main_lint

RING = """\
double buf1[100];
double buf2[100];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)
"""

BROKEN = "#pragma comm_p2p sender(0) sender(1)\n"


@pytest.fixture
def ring_file(tmp_path):
    f = tmp_path / "ring.c"
    f.write_text(RING)
    return str(f)


def test_translate_default_mpi(ring_file, capsys):
    assert main([ring_file]) == 0
    out = capsys.readouterr().out
    assert "MPI_Isend(buf1, 100, MPI_DOUBLE" in out
    assert "MPI_Waitall" in out


def test_translate_shmem(ring_file, capsys):
    assert main([ring_file, "--target", "shmem"]) == 0
    out = capsys.readouterr().out
    assert "shmem_double_put" in out
    assert "shmem_quiet" in out
    assert "MPI_Isend" not in out


def test_translate_fortran(ring_file, capsys):
    assert main([ring_file, "--fortran"]) == 0
    out = capsys.readouterr().out
    assert "call MPI_ISEND" in out
    assert "end subroutine" in out


def test_analyze(ring_file, capsys):
    assert main([ring_file, "--analyze", "--nprocs", "6"]) == 0
    out = capsys.readouterr().out
    assert "pattern (6 ranks): ring" in out
    assert "matching: consistent" in out
    assert "overlap legal: True" in out


def test_missing_file(capsys):
    assert main(["/nonexistent/path.c"]) == 2
    assert "error" in capsys.readouterr().err


def test_translation_error_reported(tmp_path, capsys):
    f = tmp_path / "broken.c"
    f.write_text(BROKEN)
    assert main([str(f)]) == 1
    assert "duplicate" in capsys.readouterr().err


def test_analyze_flags_bad_matching(tmp_path, capsys):
    f = tmp_path / "bad.c"
    f.write_text("""\
double a[4];
double b[4];
#pragma comm_p2p sender(0) receiver(rank+1) sendwhen(rank==0) receivewhen(rank==2) sbuf(a) rbuf(b)
""")
    assert main([str(f), "--analyze", "--nprocs", "4"]) == 0
    out = capsys.readouterr().out
    assert "MATCHING ISSUE" in out


# ---------------------------------------------------------------------------
# repro-lint

DEADLOCK = """\
double x[8];
double y[8];
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(0) receivewhen(1)
{
}
}
mid();
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(x) rbuf(y)
{
#pragma comm_p2p sendwhen(1) receivewhen(0)
{
}
}
"""


@pytest.fixture
def deadlock_file(tmp_path):
    f = tmp_path / "deadlock.c"
    f.write_text(DEADLOCK)
    return str(f)


def test_lint_clean_file_exits_zero(ring_file, capsys):
    assert main_lint([ring_file]) == 0
    out = capsys.readouterr().out
    assert "pattern = ring" in out


def test_lint_deadlock_exits_one_text(deadlock_file, capsys):
    assert main_lint([deadlock_file]) == 1
    out = capsys.readouterr().out
    assert "CI001" in out and "deadlock cycle" in out


def test_lint_deadlock_exits_one_json(deadlock_file, capsys):
    assert main_lint([deadlock_file, "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    [entry] = doc["reports"]
    assert any(d["code"] == "CI001" and d["severity"] == "error"
               for d in entry["diagnostics"])


def test_lint_deadlock_exits_one_sarif(deadlock_file, capsys):
    assert main_lint([deadlock_file, "--format", "sarif"]) == 1
    log = json.loads(capsys.readouterr().out)
    assert log["version"] == "2.1.0"
    results = log["runs"][0]["results"]
    assert any(r["ruleId"] == "CI001" and r["level"] == "error"
               for r in results)


def test_lint_parse_error_is_ci000(tmp_path, capsys):
    f = tmp_path / "broken.c"
    f.write_text(BROKEN)
    assert main_lint([str(f), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["reports"][0]["diagnostics"][0]["code"] == "CI000"


def test_lint_nprocs_and_var_forwarded(tmp_path, capsys):
    f = tmp_path / "shift.c"
    f.write_text("""\
double a[8];
double b[8];
#pragma comm_p2p sender(rank-k) receiver(rank+k) sendwhen(rank+k<nprocs) receivewhen(rank>=k) sbuf(a) rbuf(b)
""")
    assert main_lint([str(f), "--nprocs", "4", "--var", "k=1"]) == 0
    assert "shift" in capsys.readouterr().out


def test_lint_catalog_is_clean(capsys):
    assert main_lint(["--catalog"]) == 0
    out = capsys.readouterr().out
    assert "catalog:ring" in out


def test_lint_no_inputs_is_usage_error(capsys):
    assert main_lint([]) == 2
    assert "no inputs" in capsys.readouterr().err


def test_lint_missing_file(capsys):
    assert main_lint(["/nonexistent/lint.c"]) == 2
    assert "error" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro-lint: targets, --advise and the proof-carrying --fix


SLOW_RING = """\
double s0[512];
double r0[512];
double s1[512];
double r1[512];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s0) rbuf(r0)
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(s1) rbuf(r1)
"""


@pytest.fixture
def slow_file(tmp_path):
    f = tmp_path / "slow.c"
    f.write_text(SLOW_RING)
    return str(f)


def test_lint_json_lists_swept_targets(ring_file, capsys):
    assert main_lint([ring_file, "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    [entry] = doc["reports"]
    assert entry["targets"] == ["TARGET_COMM_MPI_1SIDE",
                                "TARGET_COMM_MPI_2SIDE",
                                "TARGET_COMM_SHMEM"]


def test_lint_target_restricts_sweep(ring_file, capsys):
    assert main_lint([ring_file, "--target", "shmem",
                      "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["reports"][0]["targets"] == ["TARGET_COMM_SHMEM"]


def test_lint_sarif_carries_run_targets(ring_file, capsys):
    assert main_lint([ring_file, "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    props = log["runs"][0]["properties"]
    assert props["targets"] == ["TARGET_COMM_MPI_1SIDE",
                                "TARGET_COMM_MPI_2SIDE",
                                "TARGET_COMM_SHMEM"]


def test_lint_advise_emits_ci1xx_but_exits_zero(slow_file, capsys):
    assert main_lint([slow_file, "--advise"]) == 0
    out = capsys.readouterr().out
    assert "CI100" in out


def test_lint_without_advise_is_silent_on_ci1xx(slow_file, capsys):
    assert main_lint([slow_file]) == 0
    assert "CI100" not in capsys.readouterr().out


def test_lint_fix_dry_run_reports_ledger_without_writing(slow_file,
                                                         capsys):
    before = open(slow_file).read()
    assert main_lint([slow_file, "--fix-dry-run"]) == 0
    out = capsys.readouterr().out
    assert "accepted [CI100] merge-standalone" in out
    assert open(slow_file).read() == before


def test_lint_fix_dry_run_json_ledger(slow_file, capsys):
    assert main_lint([slow_file, "--fix-dry-run",
                      "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    [entry] = doc["reports"]
    fix = entry["fix"]
    assert fix["changed"] is True
    [step] = fix["steps"]
    assert step["accepted"] is True
    assert step["code"] == "CI100"
    assert set(step["times_before_s"]) == set(step["times_after_s"])
    for t, t_before in step["times_before_s"].items():
        assert step["times_after_s"][t] <= t_before


def test_lint_fix_rewrites_file_in_place(slow_file, capsys):
    assert main_lint([slow_file, "--fix"]) == 0
    err = capsys.readouterr().err
    assert "fixed" in err
    fixed = open(slow_file).read()
    assert "#pragma comm_parameters" in fixed
    # the fixed file now lints clean of CI100 even with --advise
    assert main_lint([slow_file, "--advise"]) == 0
    assert "CI100" not in capsys.readouterr().out


# ---------------------------------------------------------------------------
# --fail-on: exit-code policy

WARN_ONLY = """\
double out[16];
double in[16];
int rank, nprocs;
#pragma comm_parameters sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs)
{
#pragma comm_p2p sbuf(out) rbuf(in)
  out[i] = 0.0;
#pragma end_adjacent
}
"""


@pytest.fixture
def warn_only_file(tmp_path):
    # The unevaluable write index widens the CI041 byte interval, so
    # the race finding is demoted to a warning — and nothing else in
    # the program is refutable.
    f = tmp_path / "warn_only.c"
    f.write_text(WARN_ONLY)
    return str(f)


def test_fail_on_error_is_the_default(ring_file, deadlock_file, capsys):
    assert main_lint([ring_file, "--fail-on", "error"]) == 0
    assert main_lint([deadlock_file, "--fail-on", "error"]) == 1
    capsys.readouterr()


def test_clean_file_passes_even_on_warning(ring_file, capsys):
    assert main_lint([ring_file, "--fail-on", "warning"]) == 0
    capsys.readouterr()


def test_warnings_pass_by_default(warn_only_file, capsys):
    assert main_lint([warn_only_file]) == 0
    assert "warning [CI041]" in capsys.readouterr().out


def test_fail_on_warning_fails_warning_only_report(warn_only_file, capsys):
    assert main_lint([warn_only_file, "--fail-on", "warning"]) == 1
    assert "warning [CI041]" in capsys.readouterr().out


def test_fail_on_warning_still_fails_errors(deadlock_file, capsys):
    assert main_lint([deadlock_file, "--fail-on", "warning"]) == 1
    capsys.readouterr()
