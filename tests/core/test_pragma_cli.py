"""The translator command-line tool."""

import pytest

from repro.core.pragma.__main__ import main

RING = """\
double buf1[100];
double buf2[100];
int rank, nprocs;
#pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(buf1) rbuf(buf2)
"""

BROKEN = "#pragma comm_p2p sender(0) sender(1)\n"


@pytest.fixture
def ring_file(tmp_path):
    f = tmp_path / "ring.c"
    f.write_text(RING)
    return str(f)


def test_translate_default_mpi(ring_file, capsys):
    assert main([ring_file]) == 0
    out = capsys.readouterr().out
    assert "MPI_Isend(buf1, 100, MPI_DOUBLE" in out
    assert "MPI_Waitall" in out


def test_translate_shmem(ring_file, capsys):
    assert main([ring_file, "--target", "shmem"]) == 0
    out = capsys.readouterr().out
    assert "shmem_double_put" in out
    assert "shmem_quiet" in out
    assert "MPI_Isend" not in out


def test_translate_fortran(ring_file, capsys):
    assert main([ring_file, "--fortran"]) == 0
    out = capsys.readouterr().out
    assert "call MPI_ISEND" in out
    assert "end subroutine" in out


def test_analyze(ring_file, capsys):
    assert main([ring_file, "--analyze", "--nprocs", "6"]) == 0
    out = capsys.readouterr().out
    assert "pattern (6 ranks): ring" in out
    assert "matching: consistent" in out
    assert "overlap legal: True" in out


def test_missing_file(capsys):
    assert main(["/nonexistent/path.c"]) == 2
    assert "error" in capsys.readouterr().err


def test_translation_error_reported(tmp_path, capsys):
    f = tmp_path / "broken.c"
    f.write_text(BROKEN)
    assert main([str(f)]) == 1
    assert "duplicate" in capsys.readouterr().err


def test_analyze_flags_bad_matching(tmp_path, capsys):
    f = tmp_path / "bad.c"
    f.write_text("""\
double a[4];
double b[4];
#pragma comm_p2p sender(0) receiver(rank+1) sendwhen(rank==0) receivewhen(rank==2) sbuf(a) rbuf(b)
""")
    assert main([str(f), "--analyze", "--nprocs", "4"]) == 0
    out = capsys.readouterr().out
    assert "MATCHING ISSUE" in out
