"""Safe clause-expression evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.exprs import c_to_python, evaluate, free_names
from repro.errors import PragmaSyntaxError


class TestCToPython:
    def test_logical_operators(self):
        assert c_to_python("a && b") == "a  and  b"
        assert c_to_python("a || b") == "a  or  b"

    def test_not_vs_not_equal(self):
        assert c_to_python("!a") == " not a"
        assert c_to_python("a != b") == "a != b"

    def test_ternary_rejected(self):
        with pytest.raises(PragmaSyntaxError):
            c_to_python("a ? b : c")


class TestEvaluate:
    @pytest.mark.parametrize("expr,vars,expected", [
        ("rank-1", {"rank": 3}, 2),
        ("(rank+1)%nprocs", {"rank": 3, "nprocs": 4}, 0),
        ("rank%2==0", {"rank": 2}, True),
        ("rank%2==0 && rank>0", {"rank": 0}, False),
        ("rank==0 || rank==nprocs-1", {"rank": 4, "nprocs": 5}, True),
        ("!(rank==1)", {"rank": 1}, False),
        ("2*size1", {"size1": 7}, 14),
    ])
    def test_expressions(self, expr, vars, expected):
        assert evaluate(expr, vars) == expected

    def test_unknown_name_rejected(self):
        with pytest.raises(PragmaSyntaxError, match="unknown name"):
            evaluate("rank + bogus", {"rank": 0})

    def test_function_calls_rejected(self):
        with pytest.raises(PragmaSyntaxError):
            evaluate("__import__('os')", {})

    def test_attribute_access_rejected(self):
        with pytest.raises(PragmaSyntaxError):
            evaluate("rank.__class__", {"rank": 1})

    def test_subscript_rejected(self):
        with pytest.raises(PragmaSyntaxError):
            evaluate("a[0]", {"a": [1]})

    def test_syntax_error_reported(self):
        with pytest.raises(PragmaSyntaxError, match="cannot parse"):
            evaluate("rank +", {"rank": 0})

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=1, max_value=64))
    def test_property_ring_expression_in_range(self, rank, nprocs):
        if rank >= nprocs:
            rank = rank % nprocs
        v = {"rank": rank, "nprocs": nprocs}
        nxt = evaluate("(rank+1)%nprocs", v)
        prev = evaluate("(rank-1+nprocs)%nprocs", v)
        assert 0 <= nxt < nprocs
        assert 0 <= prev < nprocs
        assert evaluate("(rank+1)%nprocs", {"rank": prev,
                                            "nprocs": nprocs}) == rank


class TestFreeNames:
    def test_names_extracted(self):
        assert free_names("(rank+1)%nprocs") == {"rank", "nprocs"}
        assert free_names("3+4") == set()
        assert free_names("a && !b") == {"a", "b"}
