"""Engine-level fault injection: jitter accounting, stalls, crashes and
graceful degradation of the survivors."""

import numpy as np
import pytest

from repro import mpi
from repro.core import comm_p2p
from repro.errors import RankFailedError, SimProcessError
from repro.faults import FaultPlan, RankCrash, RankStall, Watchdog
from repro.netmodel import gemini_model
from repro.sim import Engine

_MODEL = gemini_model()


def _ring_main(env):
    prev = (env.rank - 1 + env.size) % env.size
    nxt = (env.rank + 1) % env.size
    out = np.arange(4.0) + env.rank
    inb = np.zeros(4)
    with comm_p2p(env, sender=prev, receiver=nxt, sbuf=out, rbuf=inb):
        pass
    return inb.tolist()


def _main(env):
    mpi.init(env, _MODEL)
    return _ring_main(env)


class TestTimingPerturbation:
    def test_jitter_changes_times_not_data(self):
        clean = Engine(4)
        r0 = clean.run(_main)
        plan = FaultPlan.jitter(9)
        eng = Engine(4, faults=plan)
        r1 = eng.run(_main)
        assert r1.values == r0.values          # data identical
        assert eng.stats.fault_seed == 9       # seed recorded for replay
        assert sum(eng.stats.faults.values()) > 0
        assert "fault_seed=9" in eng.stats.summary()

    def test_perturbed_run_is_replayable(self):
        plan = FaultPlan.jitter(42)
        a = Engine(4, faults=plan).run(_main)
        b = Engine(4, faults=plan).run(_main)
        assert a.values == b.values
        assert a.finish_times == b.finish_times


class TestStall:
    def test_stall_delays_the_rank_and_its_dependents(self):
        base = Engine(4).run(_main)
        plan = FaultPlan(seed=0, stalls=(RankStall(rank=1, at=0.0,
                                                   duration=0.25),))
        eng = Engine(4, faults=plan)
        res = eng.run(_main)
        assert res.values == base.values
        assert res.finish_times[1] >= 0.25
        # rank 2 receives from rank 1, so it is dragged along.
        assert res.finish_times[2] >= 0.25
        assert eng.stats.faults["stall"] == 1

    def test_stall_fires_once(self):
        plan = FaultPlan(seed=0, stalls=(RankStall(rank=0, at=0.0,
                                                   duration=0.1),))
        eng = Engine(2, faults=plan)
        res = eng.run(_main)
        assert eng.stats.faults["stall"] == 1
        assert res.finish_times[0] < 0.3   # stalled once, not per slice


class TestCrash:
    def test_ring_crash_raises_rank_failed_naming_the_rank(self):
        """Acceptance: a crashed rank in the ring terminates the run
        promptly with a RankFailedError naming the failed rank."""
        plan = FaultPlan(seed=1, crashes=(RankCrash(rank=2, at=0.0),))
        eng = Engine(5, faults=plan, watchdog=Watchdog(wall_timeout=30.0))
        with pytest.raises(RankFailedError) as ei:
            eng.run(_main)
        assert ei.value.failed == (2,)
        assert "rank 2" in str(ei.value)
        assert eng.stats.faults["crash"] == 1

    def test_crash_error_is_not_wrapped(self):
        """Engine-level aborts surface as themselves, not wrapped in
        SimProcessError like user exceptions are."""
        plan = FaultPlan(seed=1, crashes=(RankCrash(rank=1, at=0.0),))
        with pytest.raises(RankFailedError):
            try:
                Engine(3, faults=plan).run(_main)
            except SimProcessError:  # pragma: no cover
                pytest.fail("RankFailedError must not be wrapped")

    def test_survivors_without_dependency_complete_degraded(self):
        """Ranks that never touch the dead peer finish; the result
        records the failure instead of raising."""
        def main(env):
            comm = mpi.init(env, _MODEL)
            if env.rank in (0, 1):
                # pair 0<->1 communicates; ranks 2 (dead) and 3 are idle
                peer = 1 - env.rank
                out = np.full(2, float(env.rank))
                inb = np.zeros(2)
                comm.Sendrecv(out, dest=peer, recvbuf=inb, source=peer)
                return inb.tolist()
            env.compute(1e-6)
            return None

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=2, at=0.0),))
        eng = Engine(4, faults=plan)
        res = eng.run(main)
        assert res.failed_ranks == (2,)
        assert res.values[0] == [1.0, 1.0]
        assert res.values[1] == [0.0, 0.0]

    def test_blocked_survivors_get_diagnosed_not_deadlocked(self):
        """A survivor already blocked on the dead rank when quiescence
        hits gets a RankFailedError report, not a plain deadlock."""
        def main(env):
            comm = mpi.init(env, _MODEL)
            inb = np.zeros(2)
            if env.rank == 0:
                comm.Recv(inb, source=1)   # rank 1 dies before sending
            return None

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        with pytest.raises(RankFailedError) as ei:
            Engine(2, faults=plan).run(main)
        assert 1 in ei.value.failed
        assert "crashed" in str(ei.value)

    def test_eager_peer_check_names_caller_and_victim(self):
        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))

        def main(env):
            comm = mpi.init(env, _MODEL)
            if env.rank == 0:
                env.compute(1.0)  # give the crash time to land
                comm.Send(np.zeros(2), dest=1)
            return None

        with pytest.raises(RankFailedError) as ei:
            Engine(2, faults=plan).run(main)
        msg = str(ei.value)
        assert "rank 0" in msg and "rank 1" in msg
