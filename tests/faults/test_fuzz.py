"""Sync-plan fuzzer: quick sweeps inline, the full CI sweep as slow,
the must-catch case — a deliberately weakened sync plan — and the
static/dynamic cross-check: every weakened plan the fuzzer catches at
run time must also be refuted by the static verifier."""

import pytest

import repro.core.region as region
from repro.core.analysis.codes import DEADLOCK_CODES, STALE_READ_CODES
from repro.core.analysis.verify import WEAKENINGS, verify_program
from repro.faults import CASE_NAMES, FUZZ_TARGETS, FaultPlan, fuzz, fuzz_one
from repro.faults.fuzz import (
    CASES,
    STATIC_TWINS,
    static_twin_program,
    weaken_pending_sync,
)
from repro.faults.watchdog import Watchdog

QUICK_PATTERNS = ("ring", "evenodd")


class TestQuickSweep:
    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    def test_patterns_survive_adversarial_timing(self, target):
        failures = fuzz(patterns=QUICK_PATTERNS, targets=(target,),
                        seeds=range(3))
        assert failures == []

    def test_halo_and_butterfly_one_seed_each_target(self):
        for pattern in ("halo2d", "butterfly"):
            for target in FUZZ_TARGETS:
                assert fuzz_one(pattern, target, 1) is None

    def test_custom_plan_replay(self):
        plan = FaultPlan(seed=4, delay_jitter=1e-4, reorder_prob=0.5,
                         drop_prob=0.2)
        assert fuzz_one("ring", "TARGET_COMM_MPI_2SIDE", 4,
                        plan=plan) is None


class TestWeakenedSyncIsCaught:
    """Acceptance: a sync plan that silently drops one receive handle
    must produce a reported failure on every lowering target."""

    @pytest.fixture()
    def weakened_sync(self, monkeypatch):
        orig = region.PendingComm.sync

        def weakened(self, env):
            if self.recvs:
                self.recvs.pop()
            return orig(self, env)

        monkeypatch.setattr(region.PendingComm, "sync", weakened)

    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    def test_dropped_recv_handle_detected(self, weakened_sync, target):
        failure = fuzz_one("ring", target, 0)
        assert failure is not None
        assert failure.pattern == "ring" and failure.target == target
        assert "seed=0" in str(failure)   # replay instructions

    def test_failure_reports_the_divergent_rank(self, weakened_sync):
        failure = fuzz_one("ring", "TARGET_COMM_MPI_2SIDE", 0)
        assert "rank" in failure.detail
        assert "expected" in failure.detail and "got" in failure.detail


#: Codes that count as "statically refuted" for the cross-check.
_REFUTING = DEADLOCK_CODES | STALE_READ_CODES

#: A tight watchdog: a weakened plan that deadlocks dynamically should
#: fail fast, not eat the suite's time budget.
_XCHECK_WATCHDOG = Watchdog(wall_timeout=20.0, stall_events=1_000_000)


@pytest.fixture(scope="module")
def dynamic_baselines():
    """Unfaulted reference results, one per (pattern, target)."""
    cache = {}

    def get(pattern, target):
        key = (pattern, target)
        if key not in cache:
            case = next(c for c in CASES if c.name == pattern)
            cache[key] = case.baseline(target, _XCHECK_WATCHDOG)
        return cache[key]

    return get


class TestStaticDynamicCrossCheck:
    """Acceptance: the verifier has no false negatives on the corpus of
    weakened sync plans the dynamic fuzzer catches — and no false
    positives on the unweakened plans."""

    @pytest.mark.parametrize("pattern", sorted(STATIC_TWINS))
    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    def test_unweakened_twin_verifies_clean(self, pattern, target):
        program, nprocs, extra_vars = static_twin_program(pattern)
        report = verify_program(program, nprocs=nprocs, target=target,
                                extra_vars=extra_vars)
        assert report.errors == [], \
            "\n".join(str(d) for d in report.errors)

    @pytest.mark.parametrize("pattern", sorted(STATIC_TWINS))
    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    @pytest.mark.parametrize("weakening", WEAKENINGS)
    def test_dynamically_caught_implies_statically_flagged(
            self, pattern, target, weakening, dynamic_baselines):
        baseline = dynamic_baselines(pattern, target)
        with weaken_pending_sync(weakening):
            failure = fuzz_one(pattern, target, seed=0,
                               watchdog=_XCHECK_WATCHDOG,
                               baseline=baseline)
        if failure is None:
            pytest.skip("dynamic fuzzer did not catch this weakening; "
                        "cross-check is vacuous")
        program, nprocs, extra_vars = static_twin_program(pattern)
        report = verify_program(program, nprocs=nprocs, target=target,
                                extra_vars=extra_vars,
                                weakening=weakening)
        codes = {d.code for d in report.errors}
        assert codes & _REFUTING, (
            f"dynamic fuzzer caught {pattern} on {target} under "
            f"{weakening} ({failure.detail}), but the static verifier "
            f"reported only {sorted(codes) or 'nothing'}")


@pytest.mark.slow
class TestFullSweep:
    """The CI fuzz job's workload: >= 50 seeds per (pattern, target)."""

    @pytest.mark.parametrize("pattern", CASE_NAMES)
    def test_fifty_seeds_every_target(self, pattern):
        failures = fuzz(patterns=(pattern,), targets=FUZZ_TARGETS,
                        seeds=range(50))
        assert failures == [], "\n".join(str(f) for f in failures)
