"""Sync-plan fuzzer: quick sweeps inline, the full CI sweep as slow,
and the must-catch case — a deliberately weakened sync plan."""

import pytest

import repro.core.region as region
from repro.faults import CASE_NAMES, FUZZ_TARGETS, FaultPlan, fuzz, fuzz_one

QUICK_PATTERNS = ("ring", "evenodd")


class TestQuickSweep:
    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    def test_patterns_survive_adversarial_timing(self, target):
        failures = fuzz(patterns=QUICK_PATTERNS, targets=(target,),
                        seeds=range(3))
        assert failures == []

    def test_halo_and_butterfly_one_seed_each_target(self):
        for pattern in ("halo2d", "butterfly"):
            for target in FUZZ_TARGETS:
                assert fuzz_one(pattern, target, 1) is None

    def test_custom_plan_replay(self):
        plan = FaultPlan(seed=4, delay_jitter=1e-4, reorder_prob=0.5,
                         drop_prob=0.2)
        assert fuzz_one("ring", "TARGET_COMM_MPI_2SIDE", 4,
                        plan=plan) is None


class TestWeakenedSyncIsCaught:
    """Acceptance: a sync plan that silently drops one receive handle
    must produce a reported failure on every lowering target."""

    @pytest.fixture()
    def weakened_sync(self, monkeypatch):
        orig = region.PendingComm.sync

        def weakened(self, env):
            if self.recvs:
                self.recvs.pop()
            return orig(self, env)

        monkeypatch.setattr(region.PendingComm, "sync", weakened)

    @pytest.mark.parametrize("target", FUZZ_TARGETS)
    def test_dropped_recv_handle_detected(self, weakened_sync, target):
        failure = fuzz_one("ring", target, 0)
        assert failure is not None
        assert failure.pattern == "ring" and failure.target == target
        assert "seed=0" in str(failure)   # replay instructions

    def test_failure_reports_the_divergent_rank(self, weakened_sync):
        failure = fuzz_one("ring", "TARGET_COMM_MPI_2SIDE", 0)
        assert "rank" in failure.detail
        assert "expected" in failure.detail and "got" in failure.detail


@pytest.mark.slow
class TestFullSweep:
    """The CI fuzz job's workload: >= 50 seeds per (pattern, target)."""

    @pytest.mark.parametrize("pattern", CASE_NAMES)
    def test_fifty_seeds_every_target(self, pattern):
        failures = fuzz(patterns=(pattern,), targets=FUZZ_TARGETS,
                        seeds=range(50))
        assert failures == [], "\n".join(str(f) for f in failures)
