"""FaultPlan validation, compilation and draw determinism."""

import pytest

from repro.faults import FaultInjector, FaultPlan, RankCrash, RankStall
from repro.netmodel import gemini_model
from repro.netmodel.base import MPI_2SIDED


class TestValidation:
    def test_defaults_are_benign(self):
        plan = FaultPlan()
        assert not plan.perturbs_timing
        assert plan.deferred_delivery
        assert plan.stalls == () and plan.crashes == ()

    @pytest.mark.parametrize("kwargs", [
        dict(delay_jitter=-1.0),
        dict(reorder_factor=-0.5),
        dict(reorder_prob=1.5),
        dict(reorder_prob=-0.1),
        dict(drop_prob=2.0),
        dict(max_retransmits=-1),
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_bad_events_rejected(self):
        with pytest.raises(ValueError):
            RankStall(rank=-1, at=0.0, duration=1.0)
        with pytest.raises(ValueError):
            RankStall(rank=0, at=0.0, duration=-1.0)
        with pytest.raises(ValueError):
            RankCrash(rank=0, at=-1.0)

    def test_event_lists_normalized_to_tuples(self):
        plan = FaultPlan(stalls=[RankStall(0, 0.0, 1.0)],
                         crashes=[RankCrash(1)])
        assert isinstance(plan.stalls, tuple)
        assert isinstance(plan.crashes, tuple)
        hash(plan)  # frozen + tuple fields -> usable as a dict key

    def test_jitter_factory_perturbs_timing(self):
        assert FaultPlan.jitter(7).perturbs_timing
        assert not FaultPlan.neutral(7).perturbs_timing


class TestCompile:
    def test_compile_returns_injector(self):
        inj = FaultPlan.jitter(3).compile()
        assert isinstance(inj, FaultInjector)
        assert inj.deferred_delivery

    def test_draws_are_seed_deterministic(self):
        tp = gemini_model().transport(MPI_2SIDED)
        plan = FaultPlan.jitter(11)
        a, b = plan.compile(), plan.compile()
        seq_a = [a.message_delay(tp, 0, 1, 4096) for _ in range(64)]
        seq_b = [b.message_delay(tp, 0, 1, 4096) for _ in range(64)]
        assert seq_a == seq_b

    def test_channels_draw_independently(self):
        """Per-(src, dst) streams: traffic on one channel must not
        shift the perturbations another channel sees."""
        tp = gemini_model().transport(MPI_2SIDED)
        plan = FaultPlan.jitter(11)
        a, b = plan.compile(), plan.compile()
        ref = [a.message_delay(tp, 0, 1, 4096) for _ in range(16)]
        for _ in range(50):  # unrelated traffic on another channel
            b.message_delay(tp, 2, 3, 64)
        got = [b.message_delay(tp, 0, 1, 4096) for _ in range(16)]
        assert got == ref

    def test_neutral_plan_adds_no_delay(self):
        tp = gemini_model().transport(MPI_2SIDED)
        inj = FaultPlan.neutral(5).compile()
        assert all(inj.message_delay(tp, 0, 1, 1024) == 0.0
                   for _ in range(10))
