"""Drop + retransmission under deferred-delivery mode, per target.

Satellite regression for the recovery transport: heavy message loss
must never corrupt data on any lowering target, whether the flat legacy
retransmit model or the recovery runtime's bounded-retry policies pay
for the resends — and deferred delivery (payloads land only at the
guaranteeing sync) must compose with both.
"""

import pytest

from repro import mpi
from repro.faults import FaultPlan, Watchdog
from repro.faults.fuzz import FUZZ_TARGETS, _halo2d_prog, _ring_prog
from repro.netmodel import gemini_model
from repro.recovery import RecoveryConfig, RetryPolicy, run_with_recovery
from repro.sim import Engine

_MODEL = gemini_model()
_WD = Watchdog(wall_timeout=60.0, stall_events=1_000_000)

#: Aggressive loss: most messages drop at least once.
_DROPPY = dict(seed=11, drop_prob=0.6, max_retransmits=5,
               deferred_delivery=True)


def _main(prog, target):
    def main(env):
        mpi.init(env, _MODEL)
        return prog(env, target)
    return main


@pytest.mark.parametrize("target", FUZZ_TARGETS)
class TestLegacyRetransmit:
    def test_ring_bit_exact_under_heavy_drop(self, target):
        base = Engine(5).run(_main(_ring_prog, target)).values
        eng = Engine(5, faults=FaultPlan(**_DROPPY), watchdog=_WD)
        res = eng.run(_main(_ring_prog, target))
        assert res.values == base
        assert eng.stats.faults["drop"] > 0
        # without a recovery context the retries counter stays legacy-off
        assert eng.stats.retries == 0

    def test_halo2d_bit_exact_under_heavy_drop(self, target):
        base = Engine(6).run(_main(_halo2d_prog, target)).values
        eng = Engine(6, faults=FaultPlan(**_DROPPY), watchdog=_WD)
        res = eng.run(_main(_halo2d_prog, target))
        assert res.values == base


@pytest.mark.parametrize("target", FUZZ_TARGETS)
class TestRetryPolicyTransport:
    def test_ring_retries_are_counted_and_bounded(self, target):
        base = Engine(5).run(_main(_ring_prog, target)).values
        policy = RetryPolicy(max_retries=6, backoff=2.0)
        cfg = RecoveryConfig(retry=policy)
        res = run_with_recovery(_main(_ring_prog, target), 5,
                                faults=FaultPlan(**_DROPPY), config=cfg,
                                watchdog=_WD, profile=True)
        assert res.values == base
        assert res.recovery.restarts == 0     # drops alone never abort
        assert res.stats.retries > 0
        retry_spans = res.profile.of_kind("retry")
        assert len(retry_spans) == res.stats.retries
        assert all(s.attrs["attempt"] < policy.max_retries
                   for s in retry_spans)

    def test_retry_spans_name_the_transport(self, target):
        cfg = RecoveryConfig(retry=RetryPolicy(max_retries=6))
        res = run_with_recovery(_main(_ring_prog, target), 5,
                                faults=FaultPlan(**_DROPPY), config=cfg,
                                watchdog=_WD, profile=True)
        kinds = {s.attrs["transport"] for s in res.profile.of_kind("retry")}
        expected = {"TARGET_COMM_MPI_2SIDE": "mpi2s",
                    "TARGET_COMM_MPI_1SIDE": "mpi1s",
                    "TARGET_COMM_SHMEM": "shmem"}[target]
        assert kinds == {expected}

    def test_backoff_slows_the_run_monotonically(self, target):
        """A harsher backoff can only delay delivery, never corrupt it."""
        gentle = RecoveryConfig(retry=RetryPolicy(
            max_retries=6, backoff=1.0, jitter_frac=0.0))
        harsh = RecoveryConfig(retry=RetryPolicy(
            max_retries=6, backoff=4.0, jitter_frac=0.0))
        r_gentle = run_with_recovery(_main(_ring_prog, target), 5,
                                     faults=FaultPlan(**_DROPPY),
                                     config=gentle, watchdog=_WD)
        r_harsh = run_with_recovery(_main(_ring_prog, target), 5,
                                    faults=FaultPlan(**_DROPPY),
                                    config=harsh, watchdog=_WD)
        assert r_gentle.values == r_harsh.values
        assert r_harsh.makespan >= r_gentle.makespan
