"""Progress watchdog: wall-clock hangs and virtual-time livelock."""

import threading

import numpy as np
import pytest

from repro import mpi
from repro.errors import RankFailedError, SimHangError
from repro.faults import FaultPlan, RankCrash, Watchdog
from repro.netmodel import gemini_model
from repro.sim import Engine


class TestConfig:
    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(wall_timeout=0.0)
        with pytest.raises(ValueError):
            Watchdog(stall_events=0)

    def test_none_disables_a_check(self):
        wd = Watchdog(wall_timeout=None, stall_events=None)
        assert wd.wall_timeout is None and wd.stall_events is None


class TestWallHang:
    def test_wedged_host_thread_is_reported(self):
        """A rank stuck outside the engine's control (here: waiting on
        an Event nobody sets) produces a SimHangError with a per-rank
        report instead of hanging the host forever."""
        def main(env):
            if env.rank == 0:
                threading.Event().wait()  # never returns
            env.compute(1e-6)
            return None

        eng = Engine(2, watchdog=Watchdog(wall_timeout=0.3))
        with pytest.raises(SimHangError) as ei:
            eng.run(main)
        assert "no scheduling activity" in str(ei.value)
        assert "rank 0" in ei.value.report

    def test_healthy_run_is_untouched(self):
        def main(env):
            env.compute(1e-3)
            return env.rank

        eng = Engine(3, watchdog=Watchdog(wall_timeout=5.0))
        assert eng.run(main).values == [0, 1, 2]


class TestVirtualStall:
    def test_livelocked_polling_is_reported(self):
        """Every rank spinning yield_() with no progress anywhere must
        trip the stall watchdog (virtual time cannot advance)."""
        def main(env):
            while True:
                env.yield_()

        eng = Engine(2, watchdog=Watchdog(wall_timeout=None,
                                          stall_events=200))
        with pytest.raises(SimHangError) as ei:
            eng.run(main)
        assert ei.value.report  # carries the per-rank progress report

    def test_progress_resets_the_stall_counter(self):
        """Long but *productive* polling loops stay under the limit:
        compute() in between resets the no-progress count."""
        def main(env):
            for _ in range(50):
                for _ in range(10):
                    env.yield_()
                env.compute(1e-9)
            return env.rank

        eng = Engine(2, watchdog=Watchdog(wall_timeout=None,
                                          stall_events=100))
        assert eng.run(main).values == [0, 1]


class TestDisarmOnAbort:
    """Once an abort (any SimAbortError) is in flight, both watchdog
    checks are disarmed: the abort is the verdict, and a SimHangError
    must never race it or mask it during teardown."""

    def test_rank_failure_wins_over_tight_watchdog(self):
        """A crash abort with the tightest watchdog settings still
        surfaces as RankFailedError, never SimHangError."""
        model = gemini_model()

        def main(env):
            comm = mpi.init(env, model)
            if env.rank == 0:
                comm.Recv(np.zeros(2), source=1)  # rank 1 dies first
            return None

        plan = FaultPlan(seed=0, crashes=(RankCrash(rank=1, at=0.0),))
        eng = Engine(2, faults=plan,
                     watchdog=Watchdog(wall_timeout=0.2, stall_events=1))
        with pytest.raises(RankFailedError):
            eng.run(main)
        assert eng._aborting  # the disarm flag latched

    def test_stall_counter_ignores_events_while_aborting(self):
        eng = Engine(2, watchdog=Watchdog(wall_timeout=None,
                                          stall_events=1))
        eng._aborting = True
        for _ in range(10):   # would raise SimHangError if armed
            eng._note_stall_event()
        assert eng._stall_events == 0
