"""Progress watchdog: wall-clock hangs and virtual-time livelock."""

import threading

import pytest

from repro.errors import SimHangError
from repro.faults import Watchdog
from repro.sim import Engine


class TestConfig:
    def test_limits_must_be_positive(self):
        with pytest.raises(ValueError):
            Watchdog(wall_timeout=0.0)
        with pytest.raises(ValueError):
            Watchdog(stall_events=0)

    def test_none_disables_a_check(self):
        wd = Watchdog(wall_timeout=None, stall_events=None)
        assert wd.wall_timeout is None and wd.stall_events is None


class TestWallHang:
    def test_wedged_host_thread_is_reported(self):
        """A rank stuck outside the engine's control (here: waiting on
        an Event nobody sets) produces a SimHangError with a per-rank
        report instead of hanging the host forever."""
        def main(env):
            if env.rank == 0:
                threading.Event().wait()  # never returns
            env.compute(1e-6)
            return None

        eng = Engine(2, watchdog=Watchdog(wall_timeout=0.3))
        with pytest.raises(SimHangError) as ei:
            eng.run(main)
        assert "no scheduling activity" in str(ei.value)
        assert "rank 0" in ei.value.report

    def test_healthy_run_is_untouched(self):
        def main(env):
            env.compute(1e-3)
            return env.rank

        eng = Engine(3, watchdog=Watchdog(wall_timeout=5.0))
        assert eng.run(main).values == [0, 1, 2]


class TestVirtualStall:
    def test_livelocked_polling_is_reported(self):
        """Every rank spinning yield_() with no progress anywhere must
        trip the stall watchdog (virtual time cannot advance)."""
        def main(env):
            while True:
                env.yield_()

        eng = Engine(2, watchdog=Watchdog(wall_timeout=None,
                                          stall_events=200))
        with pytest.raises(SimHangError) as ei:
            eng.run(main)
        assert ei.value.report  # carries the per-rank progress report

    def test_progress_resets_the_stall_counter(self):
        """Long but *productive* polling loops stay under the limit:
        compute() in between resets the no-progress count."""
        def main(env):
            for _ in range(50):
                for _ in range(10):
                    env.yield_()
                env.compute(1e-9)
            return env.rank

        eng = Engine(2, watchdog=Watchdog(wall_timeout=None,
                                          stall_events=100))
        assert eng.run(main).values == [0, 1]
