"""Seed striping, pooled oracle checks and shard-stats merging.

The CI lint-farm satellite: ``--shard I/N`` must partition the seed
range exactly, the ``--jobs``/``--cache-dir`` paths must reproduce the
sequential sweep's verdicts, and ``--merge-stats`` must reassemble the
full-run totals from per-shard artifacts (refusing incomplete
coverage, failing on any shard's disagreement).
"""

import json

import pytest

from repro.gen.cli import _parse_shard, build_parser, main


def _stats(tmp_path, name, argv):
    out = tmp_path / name
    rc = main(argv + ["--stats", str(out), "--quiet"])
    return rc, json.loads(out.read_text())


def test_parse_shard():
    assert _parse_shard(None) is None
    assert _parse_shard("2/4") == (2, 4)
    for bad in ("4/4", "-1/4", "nope", "1", "1/0"):
        with pytest.raises(ValueError):
            _parse_shard(bad)


def test_bad_shard_is_usage_error(capsys):
    assert main(["--seeds", "4", "--shard", "9/4", "--diff"]) == 2
    assert "--shard" in capsys.readouterr().err


def test_shards_partition_the_seed_range(capsys):
    seen = []
    for i in range(3):
        main(["--seeds", "10", "--shard", f"{i}/3", "--mode", "clean"])
        out = capsys.readouterr().out
        seen.extend(int(line.split("seed=")[1].split()[0])
                    for line in out.splitlines() if "seed=" in line)
    assert sorted(seen) == list(range(10))


def test_jobs_and_cache_reproduce_sequential(tmp_path, capsys):
    base = ["--seeds", "6", "--diff", "--fuzz-seeds", "0"]
    cache = str(tmp_path / "cache")
    rc0, seq = _stats(tmp_path, "seq.json", base)
    rc1, par = _stats(tmp_path, "par.json", base + ["--jobs", "2"])
    rc2, cold = _stats(tmp_path, "cold.json",
                       base + ["--cache-dir", cache])
    rc3, warm = _stats(tmp_path, "warm.json",
                       base + ["--cache-dir", cache])
    capsys.readouterr()
    assert rc0 == rc1 == rc2 == rc3 == 0
    for run in (par, cold, warm):
        assert run["oracle_checks"] == seq["oracle_checks"]
        assert run["disagreements"] == seq["disagreements"] == []
        assert sorted(run["explained"]) == sorted(seq["explained"])
    assert cold["cache"]["misses"] == 6 and cold["cache"]["hits"] == 0
    assert warm["cache"]["hits"] == 6 and warm["cache"]["misses"] == 0


def test_merge_reassembles_the_full_run(tmp_path, capsys):
    base = ["--seeds", "9", "--diff", "--fuzz-seeds", "0"]
    _, full = _stats(tmp_path, "full.json", base)
    inputs = []
    for i in range(3):
        _stats(tmp_path, f"s{i}.json", base + ["--shard", f"{i}/3"])
        inputs.append(str(tmp_path / f"s{i}.json"))
    merged_path = tmp_path / "merged.json"
    rc = main(["--merge-stats", str(merged_path), "--stats-in"]
              + inputs)
    capsys.readouterr()
    assert rc == 0
    merged = json.loads(merged_path.read_text())
    assert merged["programs"] == full["programs"] == 9
    assert merged["oracle_checks"] == full["oracle_checks"]
    assert sorted(merged["modes"].items()) == \
        sorted(full["modes"].items())
    assert merged["disagreements"] == []
    assert [s["shard"] for s in merged["shards"]] == \
        ["0/3", "1/3", "2/3"]


def test_merge_refuses_incomplete_coverage(tmp_path, capsys):
    for i in (0, 2):
        _stats(tmp_path, f"s{i}.json",
               ["--seeds", "6", "--shard", f"{i}/3", "--diff",
                "--fuzz-seeds", "0"])
    rc = main(["--merge-stats", str(tmp_path / "m.json"), "--stats-in",
               str(tmp_path / "s0.json"), str(tmp_path / "s2.json")])
    assert rc == 2
    assert "coverage" in capsys.readouterr().err


def test_merge_fails_on_any_shard_disagreement(tmp_path, capsys):
    shards = []
    for i, disagreements in enumerate(([], [{"seed": 3, "mode": "racy",
                                             "kind": "missed-race",
                                             "target": "t",
                                             "detail": "x"}])):
        path = tmp_path / f"s{i}.json"
        path.write_text(json.dumps({
            "programs": 2, "shard": f"{i}/2", "modes": {"racy": 2},
            "targets": ["t"], "oracle_checks": 4,
            "disagreements": disagreements, "explained": [],
            "minimized": [], "weaken": None}))
        shards.append(str(path))
    rc = main(["--merge-stats", str(tmp_path / "m.json"),
               "--stats-in"] + shards)
    capsys.readouterr()
    assert rc == 1
    merged = json.loads((tmp_path / "m.json").read_text())
    assert len(merged["disagreements"]) == 1


def test_merge_requires_inputs(capsys):
    assert main(["--merge-stats", "/tmp/nope.json"]) == 2
    assert "--stats-in" in capsys.readouterr().err


def test_parser_has_service_flags():
    ns = build_parser().parse_args(
        ["--jobs", "4", "--shard", "1/4", "--cache-dir", "/tmp/c"])
    assert ns.jobs == 4 and ns.shard == "1/4"
