"""The minimized-repro corpus stays pinned to its manifest.

Every file in ``examples/pragmas/generated/`` is a delta-minimized
program the differential oracle once caught as a static/dynamic
disagreement; ``EXPECTED.json`` records the toolchain behavior each
one pins. These tests re-check both sides — the lint verdict and the
sanitizer-observed race counts — so an analyzer or runtime regression
reintroducing the original bug fails here with the minimal repro
attached.
"""

import json
import os

import pytest

from repro.core.analysis.lint import lint_program
from repro.core.analysis.progsim import simulate_all_targets
from repro.core.pragma import parse_program

CORPUS = os.path.join(os.path.dirname(__file__), "..", "..",
                      "examples", "pragmas", "generated")

with open(os.path.join(CORPUS, "EXPECTED.json")) as fh:
    EXPECTED = {name: spec for name, spec in json.load(fh).items()
                if not name.startswith("_")}


def _load(name: str):
    with open(os.path.join(CORPUS, name)) as fh:
        return parse_program(fh.read())


def test_manifest_covers_corpus():
    files = {f for f in os.listdir(CORPUS) if f.endswith(".c")}
    assert files == set(EXPECTED), (
        "every corpus file needs an EXPECTED.json entry (and vice "
        f"versa); unmatched: {files ^ set(EXPECTED)}")


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_lint_verdict(name):
    spec = EXPECTED[name]
    report = lint_program(_load(name), nprocs=8)
    codes = sorted({d.code for d in report.diagnostics})
    rc = 1 if any(d.severity == "error"
                  for d in report.diagnostics) else 0
    assert rc == spec["lint_rc"], (
        f"{name}: lint rc {rc} != pinned {spec['lint_rc']} "
        f"(codes: {codes})")
    assert codes == sorted(spec["lint_codes"]), (
        f"{name}: lint codes {codes} != pinned {spec['lint_codes']}")


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_dynamic_races(name):
    spec = EXPECTED[name]["dynamic"]
    outcomes = simulate_all_targets(_load(name), spec["nprocs"],
                                    sanitize="collect", capture=False)
    observed = {key: len(out.races)
                for key, out in outcomes.items() if out.races}
    assert observed == spec["races"], (
        f"{name}: sanitizer races {observed} != pinned "
        f"{spec['races']}")
