"""Shared fixtures for the generator/oracle test suite."""

import pytest

from repro.gen.generator import generate
from repro.gen.oracle import OracleConfig, check_program

#: Quick oracle profile for tests: no jittered reruns, no fix arm.
QUICK = OracleConfig(fuzz_seeds=0)


@pytest.fixture(scope="session")
def weakened_catch():
    """A ``(GeneratedProgram, OracleResult)`` pair where weakening the
    static side with ``ignore-races`` produces a disagreement the
    unweakened oracle does not — the seeded analyzer-regression the
    acceptance criteria require the pipeline to catch.
    """
    weak = OracleConfig(fuzz_seeds=0, weaken="ignore-races")
    for seed in range(40):
        gp = generate(seed, "racy")
        weakened = check_program(gp, weak)
        if not weakened.ok:
            assert check_program(gp, QUICK).ok, (
                f"seed {seed} must be clean under the honest oracle")
            return gp, weakened
    pytest.fail("no racy seed in 0..39 tripped the weakened oracle")
