"""Properties of the randomized directive-program generator.

The generator's contract: seed-reproducible output, well-formed
pragma syntax on every draw, and sources that survive the printer
round-trip — the invariant the whole differential pipeline leans on
(a repro is only a repro if its seed regenerates it bit-for-bit).
"""

import pytest

from repro.core.pragma import parse_program
from repro.gen.generator import MODES, generate, generate_many

#: Breadth used by the property sweeps (matches the satellite spec:
#: parse -> print -> parse over 200 generated programs).
PROPERTY_SEEDS = range(200)


def test_deterministic_per_seed():
    for seed in (0, 7, 44, 450, 968):
        for mode in MODES:
            a = generate(seed, mode)
            b = generate(seed, mode)
            assert a.source == b.source
            assert a.nprocs == b.nprocs
            assert (a.seed, a.mode) == (seed, mode)


def test_distinct_seeds_differ():
    sources = {generate(seed, "clean").source for seed in range(30)}
    assert len(sources) > 25, "seeds should explore distinct programs"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        generate(1, "bogus")


def test_nprocs_override():
    gp = generate(3, "clean", nprocs=5)
    assert gp.nprocs == 5


def test_mix_dealing_is_deterministic():
    first = [gp.mode for gp in generate_many(range(40), mode="mix")]
    again = [gp.mode for gp in generate_many(range(40), mode="mix")]
    assert first == again
    assert set(first) == set(MODES), "mix should deal out every mode"


def test_racy_mode_records_plant():
    planted = [generate(seed, "racy").planted for seed in range(20)]
    assert any(planted), "racy mode should record its planted defect"


@pytest.mark.parametrize("mode", sorted(MODES))
def test_every_program_parses(mode):
    for seed in PROPERTY_SEEDS:
        gp = generate(seed, mode)
        program = parse_program(gp.source)  # must not raise
        assert program.all_p2p(), f"seed {seed}: no directives generated"


def test_parse_print_parse_fixpoint():
    """Satellite invariant: to_source() is a fixpoint for every
    generated program — printing is canonical after one round-trip."""
    for gp in generate_many(PROPERTY_SEEDS, mode="mix"):
        printed = parse_program(gp.source).to_source()
        assert parse_program(printed).to_source() == printed, (
            f"seed {gp.seed} ({gp.mode}): parse -> print -> parse is "
            "not a fixpoint")
