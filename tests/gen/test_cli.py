"""``repro-gen`` command-line behavior: exit codes, stats artifact,
emit mode, and the weakened-oracle acceptance path (catch + minimize
to a tiny repro).
"""

import json

from repro.gen.cli import build_parser, main
from repro.gen.generator import generate


def test_parser_defaults():
    ns = build_parser().parse_args([])
    assert ns.mode == "mix" and not ns.diff and ns.fuzz_seeds == 2


def test_list_mode_exit_zero(capsys):
    assert main(["--seed", "1", "2", "--mode", "clean"]) == 0
    out = capsys.readouterr().out
    assert "seed=1" in out and "seed=2" in out


def test_bad_target_is_usage_error(capsys):
    assert main(["--seed", "1", "--diff", "--targets", "bogus"]) == 2


def test_emit_writes_sources(tmp_path):
    rc = main(["--seed", "3", "--mode", "clean", "--emit",
               "--out", str(tmp_path), "--quiet"])
    assert rc == 0
    path = tmp_path / "seed3_clean.c"
    assert path.read_text() == generate(3, "clean").source


def test_clean_diff_exit_zero_with_stats(tmp_path, capsys):
    stats_file = tmp_path / "stats.json"
    rc = main(["--seed", "0", "--mode", "clean", "--diff",
               "--fuzz-seeds", "0", "--stats", str(stats_file),
               "--quiet"])
    assert rc == 0
    stats = json.loads(stats_file.read_text())
    assert stats["programs"] == 1
    assert stats["disagreements"] == []
    assert stats["oracle_checks"] > 0
    assert "hb_cache" in stats
    assert "0 disagreements" in capsys.readouterr().out


def test_expect_disagreements_inverts_exit(capsys):
    rc = main(["--seed", "0", "--mode", "clean", "--diff",
               "--fuzz-seeds", "0", "--expect-disagreements",
               "--quiet"])
    assert rc == 1
    assert "expected disagreements" in capsys.readouterr().err


def test_weakened_run_is_caught_and_minimized(tmp_path, capsys,
                                              weakened_catch):
    """Acceptance bar end-to-end: a deliberately weakened static side
    disagrees with the dynamic side, and the repro auto-minimizes to
    at most 10 statements."""
    gp, _weakened = weakened_catch
    stats_file = tmp_path / "stats.json"
    rc = main(["--seed", str(gp.seed), "--mode", "racy", "--diff",
               "--fuzz-seeds", "0", "--weaken-oracle", "ignore-races",
               "--expect-disagreements", "--minimize",
               "--out", str(tmp_path), "--stats", str(stats_file),
               "--quiet"])
    assert rc == 0, capsys.readouterr().err
    stats = json.loads(stats_file.read_text())
    assert stats["weaken"] == "ignore-races"
    assert stats["minimized"], "the disagreeing program must minimize"
    for entry in stats["minimized"]:
        assert entry["final_statements"] <= 10, entry
        repro = tmp_path / str(entry["file"]).rsplit("/", 1)[-1]
        assert repro.exists()
        assert f"seed={gp.seed}" in repro.read_text()
