"""The differential oracle: agreement on clean programs, detection of
seeded analyzer weakenings, and the contract-undefined payload mask.
"""

from repro.core.analysis.lint import lint_program
from repro.core.analysis.verify import undefined_payload_buffers
from repro.core.clauses import Target
from repro.core.pragma import parse_program
from repro.faults.fuzz import mask_payloads
from repro.gen.generator import generate
from repro.gen.oracle import WEAKENINGS, OracleConfig, check_program

from .conftest import QUICK


def test_clean_program_agrees_everywhere():
    result = check_program(generate(0, "clean"), QUICK)
    assert result.ok, [str(d) for d in result.disagreements]
    assert result.checks > 3
    # All three targets were swept statically and dynamically.
    assert set(result.dynamic) == {t.value for t in Target}


def test_fuzz_arm_adds_checks():
    gp = generate(0, "clean")
    quick = check_program(gp, QUICK)
    fuzzed = check_program(gp, OracleConfig(fuzz_seeds=2))
    assert fuzzed.ok
    assert fuzzed.checks > quick.checks


def test_weakening_names_are_code_families():
    assert set(WEAKENINGS) == {"ignore-races", "ignore-deadlocks"}
    assert all(codes for codes in WEAKENINGS.values())


def test_weakened_oracle_catches_seeded_regression(weakened_catch):
    """Acceptance bar: an injected analyzer weakening is caught as a
    static/dynamic disagreement on a generated racy program."""
    gp, weakened = weakened_catch
    kinds = {d.kind for d in weakened.disagreements}
    assert "missed-race" in kinds, (
        f"seed {gp.seed}: dropping the race codes should surface as a "
        f"missed race, got {kinds}")
    assert all(d.seed == gp.seed for d in weakened.disagreements)


# ---------------------------------------------------------------------------
# Regressions distilled from the 1000-seed sweep


#: Positional pairing across lowerings (seed-447 pattern): the shared
#: sequence counters pair the halves, but no backend delivers between
#: a SHMEM put and a two-sided receive — a deadlock, not a match.
MISLOWERED = """\
double a[4];
double b[4];
double c[4];
double d[4];
int rank, nprocs;
#pragma comm_p2p sender(0) receiver(1) sendwhen(rank==0) receivewhen(0) sbuf(a) rbuf(b) target(TARGET_COMM_SHMEM)
{
}
#pragma comm_p2p sender(0) receiver(1) sendwhen(0) receivewhen(rank==1) sbuf(c) rbuf(d) target(TARGET_COMM_MPI_2SIDE)
{
}
consume(d);
"""


def test_mismatched_lowering_is_ci007():
    report = lint_program(parse_program(MISLOWERED), nprocs=2)
    codes = {d.code for d in report.diagnostics}
    assert "CI007" in codes, f"got {sorted(codes)}"
    assert any(d.code == "CI007" and d.severity == "error"
               for d in report.diagnostics)


def test_undefined_payload_buffers_cover_unreceived_puts():
    """Seed-237 pattern: bytes only a SHMEM put would land (and a
    two-sided lowering never delivers) are contract-undefined and must
    be masked from every payload comparison."""
    program = parse_program(MISLOWERED)
    undefined = undefined_payload_buffers(program, 2, Target.SHMEM)
    assert (1, "b") in undefined, f"got {sorted(undefined)}"
    # A fully matched clean program leaves nothing undefined.
    gp = generate(0, "clean")
    ring = parse_program(gp.source)
    for target in Target:
        assert undefined_payload_buffers(
            ring, gp.nprocs, target) == frozenset()


def test_mask_payloads_drops_only_named_buffers():
    payloads = ({"a": [1.0], "b": [2.0]}, {"b": [3.0]})
    masked = mask_payloads(payloads, frozenset({(0, "b")}))
    assert masked == ({"a": [1.0]}, {"b": [3.0]})
    assert mask_payloads(payloads, frozenset()) is payloads
    assert mask_payloads(None, frozenset({(0, "b")})) is None
