"""Delta-minimizer properties: idempotence, monotonicity, determinism.

The predicates here are cheap structural probes (substring / parse
checks) so the properties are exercised without paying for full
oracle runs; ``test_oracle.py`` covers minimization against the real
differential predicate.
"""

from repro.core.pragma import parse_program
from repro.gen.generator import generate
from repro.gen.minimize import minimize_source, statement_count

#: A hand-written program with plenty to shred: raw lines, an
#: optional-clause directive, a wrapping region and a second directive
#: that the interesting-property predicate does not need.
SOURCE = """\
double a[8];
double b[8];
double c[8];
double d[8];
int rank, nprocs;
a[0] = rank * 100 + 1;
a[1] = rank * 100 + 2;
#pragma comm_parameters place_sync(END_PARAM_REGION)
{
    #pragma comm_p2p sender((rank-1+nprocs)%nprocs) receiver((rank+1)%nprocs) sbuf(a) rbuf(b) count(4)
    {
        compute_us(5);
    }
}
c[0] = rank * 1000 + 1;
#pragma comm_p2p sender((rank+1)%nprocs) receiver((rank-1+nprocs)%nprocs) sbuf(c) rbuf(d)
{
}
consume(b);
consume(d);
"""


def _keeps_ring(source: str) -> bool:
    """Interest predicate: the a->b ring directive survives."""
    return "sbuf(a)" in source and "rbuf(b)" in source


def test_shrinks_to_the_interesting_core():
    result = minimize_source(SOURCE, _keeps_ring)
    assert result.final_statements < result.initial_statements
    assert _keeps_ring(result.source)
    # Everything the predicate does not pin must be gone.
    assert "sbuf(c)" not in result.source
    assert "consume" not in result.source
    assert "count(4)" not in result.source


def test_idempotence():
    once = minimize_source(SOURCE, _keeps_ring)
    again = minimize_source(once.source, _keeps_ring)
    assert again.source == once.source
    assert again.accepted == 0


def test_monotonicity():
    """No accepted candidate ever grows the statement count."""
    sizes = []

    def spy(source: str) -> bool:
        sizes.append(statement_count(parse_program(source)))
        return _keeps_ring(source)

    result = minimize_source(SOURCE, spy)
    start = statement_count(parse_program(SOURCE))
    assert result.final_statements <= start
    # Every candidate the minimizer even *offered* was no larger than
    # the starting program (strict-shrink gating happens pre-predicate).
    assert all(n <= start for n in sizes)


def test_determinism():
    a = minimize_source(SOURCE, _keeps_ring)
    b = minimize_source(SOURCE, _keeps_ring)
    assert (a.source, a.accepted, a.attempts) == \
           (b.source, b.accepted, b.attempts)


def test_uninteresting_input_is_returned_unchanged():
    result = minimize_source(SOURCE, lambda _src: False)
    assert result.source == SOURCE
    assert result.accepted == 0
    assert result.final_statements == result.initial_statements


def test_generated_program_minimizes_deterministically():
    gp = generate(11, "racy")

    def planted_survives(source: str) -> bool:
        return "[0] = 7.0;" in source

    if not planted_survives(gp.source):  # plant kind without the store
        return
    a = minimize_source(gp.source, planted_survives)
    b = minimize_source(gp.source, planted_survives)
    assert a.source == b.source
    assert planted_survives(a.source)
    assert a.final_statements <= statement_count(
        parse_program(gp.source))
