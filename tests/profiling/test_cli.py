"""The repro-trace command line tool."""

import json

import pytest

from repro.profiling.cli import main


class TestReproTrace:
    def test_requires_exactly_one_input(self, capsys):
        with pytest.raises(SystemExit):
            main([])
        with pytest.raises(SystemExit):
            main(["examples/pragmas/ring.c", "--pattern", "ring"])

    def test_metrics_is_default_action(self, capsys):
        assert main(["examples/pragmas/slow/early_sync.c"]) == 0
        out = capsys.readouterr().out
        assert "realized overlap" in out
        assert "forfeited overlap" in out

    def test_critical_path_reports_forfeited_overlap(self, capsys):
        assert main(["examples/pragmas/slow/early_sync.c",
                     "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        # The acceptance figure: measured forfeited overlap on
        # early_sync.c is 15us — the advisor's CI101 saving.
        assert "forfeited overlap         15.000 us" in out

    def test_pattern_mode_all_targets(self, capsys):
        for target in ("mpi2s", "mpi1s", "shmem"):
            assert main(["--pattern", "ring", "--target", target]) == 0
            assert "makespan" in capsys.readouterr().out

    def test_export_chrome(self, tmp_path, capsys):
        out_file = tmp_path / "ring.json"
        assert main(["--pattern", "ring",
                     "--export-chrome", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert "wrote" in capsys.readouterr().out

    def test_var_binding(self, capsys):
        assert main(["examples/pragmas/halo1d.c", "--var", "n=64"]) == 0
        with pytest.raises(SystemExit):
            main(["examples/pragmas/ring.c", "--var", "bogus"])

    def test_app_mode(self, capsys):
        assert main(["--app", "wllsms", "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "barrier" in out or "compute" in out
