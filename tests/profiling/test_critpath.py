"""Critical-path invariants across patterns x targets, and the
advisor cross-check the profiler exists to provide."""

import importlib

import pytest

from repro import mpi
from repro.core.analysis.progsim import simulate_program
from repro.core.pragma import parse_program
from repro.netmodel import gemini_model
from repro.profiling import aggregate, critical_path
from repro.sim import Engine

fuzz = importlib.import_module("repro.faults.fuzz")

TARGETS = ("TARGET_COMM_MPI_2SIDE", "TARGET_COMM_MPI_1SIDE",
           "TARGET_COMM_SHMEM")
PATTERNS = {
    "ring": (fuzz._ring_prog, 5),
    "halo2d": (fuzz._halo2d_prog, 6),
    "evenodd": (fuzz._evenodd_prog, 6),
}


def _profile_pattern(name, target):
    prog, nprocs = PATTERNS[name]
    model = gemini_model()
    eng = Engine(nprocs, profile=True)

    def main(env):
        mpi.init(env, model)
        return prog(env, target)

    res = eng.run(main)
    assert res.profile is not None
    return res.profile


class TestCatalogInvariants:
    @pytest.mark.parametrize("target", TARGETS)
    @pytest.mark.parametrize("pattern", sorted(PATTERNS))
    def test_path_bounded_and_ratios_sane(self, pattern, target):
        profile = _profile_pattern(pattern, target)
        cp = critical_path(profile)
        # The charged chain can never outrun the run itself.
        assert 0.0 < cp.length_s <= profile.makespan + 1e-12
        assert cp.makespan_s == pytest.approx(profile.makespan)
        assert sum(cp.breakdown.values()) == pytest.approx(cp.length_s)
        assert all(step.charge_s >= 0.0 for step in cp.steps)
        m = aggregate(profile)
        assert 0.0 <= m.realized_overlap_ratio <= 1.0
        for rank in m.ranks:
            assert 0.0 <= rank.overlap_ratio <= 1.0
            assert rank.forfeited_overlap_s >= 0.0

    @pytest.mark.parametrize("target", TARGETS)
    def test_ring_path_crosses_ranks(self, target):
        cp = critical_path(_profile_pattern("ring", target))
        assert len(cp.steps) >= 2
        # The ring's length is communication-bound: the chain must pass
        # through the communication vocabulary, not just compute.
        assert {"sync", "message", "notify"} & set(cp.breakdown)

    def test_render(self):
        cp = critical_path(_profile_pattern("ring", TARGETS[0]))
        out = cp.render(limit=3)
        assert "critical path" in out
        assert "forfeited overlap" in out


class TestAdvisorCrossCheck:
    def test_forfeited_overlap_matches_ci101_saving(self):
        """Acceptance: on early_sync.c the *measured* forfeited overlap
        is within 10% of the advisor's CI101 *predicted* saving (same
        nprocs, target, net model)."""
        from repro.core.analysis.advisor import advise_program

        with open("examples/pragmas/slow/early_sync.c",
                  encoding="utf-8") as fh:
            program = parse_program(fh.read())
        findings = [f for f in advise_program(program, nprocs=8)
                    if f.diagnostic.code == "CI101"]
        assert findings, "advisor no longer flags early_sync.c"
        predicted = findings[0].diagnostic.saving_s

        outcome = simulate_program(program, nprocs=8,
                                   target="TARGET_COMM_MPI_2SIDE",
                                   profile=True)
        cp = critical_path(outcome.profile)
        measured = cp.forfeited_overlap_s
        assert measured == pytest.approx(predicted, rel=0.10)
        # The prediction can promise at most what the run forfeits.
        assert predicted <= measured + 1e-12
        assert cp.length_s <= outcome.modeled_time + 1e-12

    def test_hoisted_version_forfeits_nothing(self):
        """After the CI101 fix (compute inside the overlap body) the
        realized overlap is full and nothing is forfeited."""
        from repro.core.analysis.fix import fix_source

        with open("examples/pragmas/slow/early_sync.c",
                  encoding="utf-8") as fh:
            source = fh.read()
        result = fix_source(source, nprocs=8)
        assert result.changed
        outcome = simulate_program(parse_program(result.source),
                                   nprocs=8,
                                   target="TARGET_COMM_MPI_2SIDE",
                                   profile=True)
        m = aggregate(outcome.profile)
        assert m.realized_overlap_ratio == pytest.approx(1.0)
        assert m.forfeited_overlap_s == pytest.approx(0.0, abs=1e-9)
