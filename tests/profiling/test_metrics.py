"""Metric aggregation: overlap ratios, forfeited overlap, traffic."""

import pytest

from repro.profiling.metrics import _overlap, _union, aggregate
from repro.profiling.spans import Profile


class TestIntervalHelpers:
    def test_union_merges_overlaps(self):
        assert _union([(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)]) == \
            [(0.0, 3.0), (5.0, 6.0)]

    def test_overlap_clips_to_union(self):
        union = [(0.0, 2.0), (5.0, 6.0)]
        assert _overlap(1.0, 5.5, union) == pytest.approx(1.5)
        assert _overlap(2.5, 4.0, union) == 0.0


class TestAggregate:
    def _profile(self):
        p = Profile()
        # Rank 0: 2us compute fully inside a 0..3us window, then 1us sync.
        p.add(0, "window", 0.0, 3e-6)
        p.add(0, "post", 0.0, 1e-7, bytes=64, sends=1, recvs=0,
              label="p2p@L3")
        p.add(0, "compute", 1e-6, 3e-6)
        p.add(0, "sync", 3e-6, 4e-6)
        # Rank 1: 2us compute entirely after its sync (no window cover).
        p.add(1, "sync", 0.0, 1e-6)
        p.add(1, "compute", 1e-6, 3e-6)
        p.add(1, "message", 0.0, 1e-6, src=0, dst=1, seq=0, nbytes=64)
        p.finish([4e-6, 3e-6])
        return p

    def test_overlap_ratio_per_rank(self):
        m = aggregate(self._profile())
        assert m.ranks[0].overlap_ratio == pytest.approx(1.0)
        assert m.ranks[1].overlap_ratio == 0.0
        assert 0.0 <= m.realized_overlap_ratio <= 1.0

    def test_forfeited_overlap_is_min_of_sync_and_exposed_compute(self):
        m = aggregate(self._profile())
        # Rank 0 overlapped everything: nothing forfeited.
        assert m.ranks[0].forfeited_overlap_s == 0.0
        # Rank 1: min(1us sync, 2us exposed compute) = 1us.
        assert m.ranks[1].forfeited_overlap_s == pytest.approx(1e-6)
        assert m.forfeited_overlap_s == pytest.approx(1e-6)

    def test_traffic_attribution(self):
        m = aggregate(self._profile())
        assert m.ranks[0].msgs_sent == 1
        assert m.ranks[1].msgs_recv == 1
        assert m.ranks[1].bytes_recv == 64
        assert m.total_bytes == 64

    def test_directive_rows(self):
        m = aggregate(self._profile())
        assert m.directives["p2p@L3"].posts == 1
        assert m.directives["p2p@L3"].bytes == 64

    def test_render_mentions_key_figures(self):
        out = aggregate(self._profile()).render()
        assert "realized overlap" in out
        assert "forfeited overlap" in out
        assert "rank" in out

    def test_empty_profile(self):
        p = Profile()
        p.finish([])
        m = aggregate(p)
        assert m.realized_overlap_ratio == 0.0
        assert m.forfeited_overlap_s == 0.0
