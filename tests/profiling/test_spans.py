"""The Profile span recorder and its engine wiring."""

import numpy as np
import pytest

from repro import mpi
from repro.core.directives import comm_p2p
from repro.netmodel import gemini_model
from repro.profiling.spans import Profile
from repro.sim import Engine


class TestProfileRecorder:
    def test_begin_end_roundtrip(self):
        p = Profile()
        sid = p.begin(0, "window", 1.0)
        p.end(sid, 2.5, closed_by="sync")
        (span,) = p.spans
        assert span.kind == "window"
        assert span.duration == pytest.approx(1.5)
        assert span.attrs["closed_by"] == "sync"

    def test_end_clamps_backwards_time(self):
        p = Profile()
        sid = p.begin(0, "window", 2.0)
        p.end(sid, 1.0)
        assert p.spans[0].t1 == 2.0

    def test_finish_closes_open_spans(self):
        p = Profile()
        p.begin(1, "window", 0.5)
        p.finish([1.0, 3.0])
        assert p.spans[0].t1 == 3.0
        assert p.makespan == 3.0
        assert p.nranks == 2

    def test_label_stack(self):
        p = Profile()
        assert p.current_label(0) is None
        p.push_label(0, "outer")
        p.push_label(0, "inner")
        assert p.current_label(0) == "inner"
        assert p.current_label(1) is None
        p.pop_label(0)
        assert p.current_label(0) == "outer"

    def test_queries(self):
        p = Profile()
        p.add(0, "compute", 0.0, 1.0)
        p.add(1, "sync", 0.0, 2.0)
        assert len(p) == 2
        assert [s.kind for s in p.of_kind("sync")] == ["sync"]
        assert len(p.by_rank(1)) == 1
        assert "sync" in p.render(limit=1) or "compute" in p.render(limit=1)


class TestEngineWiring:
    def test_off_by_default(self):
        eng = Engine(2)
        res = eng.run(lambda env: env.compute(1e-6))
        assert eng.profile is None
        assert res.profile is None

    def test_compute_spans_recorded(self):
        eng = Engine(2, profile=True)
        res = eng.run(lambda env: env.compute(2e-6, label="work"))
        computes = res.profile.of_kind("compute")
        assert len(computes) == 2
        assert all(s.duration == pytest.approx(2e-6) for s in computes)
        assert computes[0].attrs["label"] == "work"

    def test_directive_run_emits_full_span_vocabulary(self):
        model = gemini_model()

        def main(env):
            mpi.init(env, model)
            prev = (env.rank - 1 + env.size) % env.size
            nxt = (env.rank + 1) % env.size
            out = np.arange(64.0)
            inb = np.zeros(64)
            with comm_p2p(env, sender=prev, receiver=nxt,
                          sbuf=out, rbuf=inb):
                env.compute(1e-6)

        eng = Engine(4, profile=True)
        res = eng.run(main)
        kinds = {s.kind for s in res.profile}
        assert {"compute", "post", "sync", "window", "message"} <= kinds
        sync = res.profile.of_kind("sync")[0]
        assert sync.attrs["send_keys"] and sync.attrs["recv_keys"]
        # Message spans are attributed to the destination rank.
        for m in res.profile.of_kind("message"):
            assert m.rank == m.attrs["dst"]

    def test_windows_close_at_sync(self):
        model = gemini_model()

        def main(env):
            mpi.init(env, model)
            prev = (env.rank - 1 + env.size) % env.size
            nxt = (env.rank + 1) % env.size
            out = np.arange(8.0)
            inb = np.zeros(8)
            with comm_p2p(env, sender=prev, receiver=nxt,
                          sbuf=out, rbuf=inb):
                pass

        res = Engine(3, profile=True).run(main)
        for rank in range(3):
            windows = [s for s in res.profile.of_kind("window")
                       if s.rank == rank]
            syncs = [s for s in res.profile.of_kind("sync")
                     if s.rank == rank]
            assert windows and syncs
            assert windows[0].t1 == pytest.approx(syncs[0].t0)
