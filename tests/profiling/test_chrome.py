"""Chrome trace-event export: schema conformance and stable ordering."""

import json

import numpy as np
import pytest

from repro import mpi
from repro.core.directives import comm_p2p
from repro.netmodel import gemini_model
from repro.profiling.chrome import chrome_trace, export_chrome
from repro.sim import Engine

#: Trace-event fields required per phase type (the subset of the
#: Trace Event Format spec Perfetto's JSON importer validates).
_REQUIRED = {
    "M": {"ph", "name", "pid", "tid", "args"},
    "X": {"ph", "name", "pid", "tid", "ts", "dur"},
    "i": {"ph", "name", "pid", "tid", "ts", "s"},
}


def _run_profiled():
    model = gemini_model()

    def main(env):
        mpi.init(env, model)
        prev = (env.rank - 1 + env.size) % env.size
        nxt = (env.rank + 1) % env.size
        out = np.arange(32.0)
        inb = np.zeros(32)
        with comm_p2p(env, sender=prev, receiver=nxt,
                      sbuf=out, rbuf=inb):
            env.compute(1e-6)

    return Engine(3, profile=True).run(main).profile


class TestTraceEventSchema:
    def test_every_event_is_schema_conformant(self):
        doc = chrome_trace(_run_profiled())
        assert isinstance(doc["traceEvents"], list)
        for event in doc["traceEvents"]:
            assert event["ph"] in _REQUIRED, event
            missing = _REQUIRED[event["ph"]] - set(event)
            assert not missing, f"{event} missing {missing}"
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert isinstance(event["pid"], int)
                assert isinstance(event["tid"], int)

    def test_metadata_names_processes_and_threads(self):
        doc = chrome_trace(_run_profiled())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["pid"], e["args"]["name"]) for e in meta
                 if e["name"] == "process_name"}
        assert (0, "ranks") in names
        assert (1, "network") in names
        threads = {e["args"]["name"] for e in meta
                   if e["name"] == "thread_name" and e["pid"] == 0}
        assert threads == {"rank 0", "rank 1", "rank 2"}

    def test_lane_assignment(self):
        doc = chrome_trace(_run_profiled())
        for event in doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            if event.get("cat") in ("message", "notify"):
                assert event["pid"] == 1
                assert event["tid"] == event["args"]["src"]
            else:
                assert event["pid"] == 0

    def test_deterministic_ordering_and_serialization(self):
        a = json.dumps(chrome_trace(_run_profiled()), sort_keys=True)
        b = json.dumps(chrome_trace(_run_profiled()), sort_keys=True)
        assert a == b
        # Metadata leads; timed events are sorted by (ts, pid, tid, name).
        doc = json.loads(a)
        events = doc["traceEvents"]
        first_timed = next(i for i, e in enumerate(events)
                           if e["ph"] != "M")
        assert all(e["ph"] == "M" for e in events[:first_timed])
        keys = [(e["ts"], e["pid"], e["tid"], e["name"])
                for e in events[first_timed:]]
        assert keys == sorted(keys)

    def test_export_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome(_run_profiled(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ns"

    def test_attrs_are_json_safe(self):
        # sync spans carry tuple-valued keys; they must serialize.
        doc = chrome_trace(_run_profiled())
        syncs = [e for e in doc["traceEvents"]
                 if e.get("cat") == "sync"]
        assert syncs
        for e in syncs:
            assert isinstance(e["args"]["send_keys"], list)
            json.dumps(e["args"])
