"""Persistent requests (MPI_Send_init / Recv_init / Start)."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.netmodel import uniform_model
from repro.util.units import usec

from tests._spmd import mpi_run


def test_persistent_roundtrip_many_episodes():
    n = 6

    def prog(comm):
        if comm.rank == 0:
            buf = np.zeros(1)
            preq = comm.Send_init(buf, dest=1, tag=3)
            for i in range(n):
                buf[0] = float(i)
                comm.Start(preq)
                comm.Wait(preq.active)
            return None
        got = []
        buf = np.zeros(1)
        preq = comm.Recv_init(buf, source=0, tag=3)
        for _ in range(n):
            comm.Start(preq)
            comm.Wait(preq.active)
            got.append(buf[0])
        return got

    res, _ = mpi_run(2, prog)
    assert res.values[1] == [float(i) for i in range(n)]


def test_start_while_active_rejected():
    def prog(comm):
        preq = comm.Recv_init(np.zeros(1), source=0, tag=0)
        comm.Start(preq)
        comm.Start(preq)

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert isinstance(ei.value.original, MPIError)


def test_start_of_plain_request_rejected():
    def prog(comm):
        req = comm.Irecv(np.zeros(1), source=0)
        comm.Start(req)

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert isinstance(ei.value.original, MPIError)


def test_alloc_cost_paid_once_not_per_start():
    """The amortization persistent ops exist for, in modelled time."""
    model = uniform_model()
    n = 10

    def persistent(comm):
        if comm.rank == 0:
            t0 = comm.env.now
            preq = comm.Send_init(np.zeros(8), dest=1, tag=0)
            reqs = []
            for _ in range(n):
                reqs.append(comm.Start(preq))
                comm._wait_quiet(reqs[-1])
            return comm.env.now - t0
        for _ in range(n):
            comm.Recv(np.zeros(8), source=0, tag=0)
        return None

    def plain(comm):
        if comm.rank == 0:
            t0 = comm.env.now
            for _ in range(n):
                req = comm.Isend(np.zeros(8), dest=1, tag=0)
                comm._wait_quiet(req)
            return comm.env.now - t0
        for _ in range(n):
            comm.Recv(np.zeros(8), source=0, tag=0)
        return None

    # Uniform model has no request_alloc cost; build one that does.
    import dataclasses
    model = dataclasses.replace(model, request_alloc_overhead=1 * usec)
    r_pers, _ = mpi_run(2, persistent, model=model)
    r_plain, _ = mpi_run(2, plain, model=model)
    saved = r_plain.values[0] - r_pers.values[0]
    assert saved == pytest.approx((n - 1) * 1 * usec)


def test_persistent_recv_any_source():
    def prog(comm):
        if comm.rank == 0:
            buf = np.zeros(1)
            preq = comm.Recv_init(buf, source=mpi.ANY_SOURCE, tag=1)
            comm.Start(preq)
            comm.Wait(preq.active)
            return buf[0]
        comm.Send(np.array([float(comm.rank * 5)]), dest=0, tag=1)
        return None

    res, _ = mpi_run(2, prog)
    assert res.values[0] == 5.0
