"""Cartesian topologies."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.mpi.cart import dims_create

from tests._spmd import mpi_run


class TestDimsCreate:
    @pytest.mark.parametrize("n,d,expected", [
        (4, 2, [2, 2]),
        (6, 2, [3, 2]),
        (12, 2, [4, 3]),
        (12, 3, [3, 2, 2]),
        (7, 2, [7, 1]),
        (8, 1, [8]),
    ])
    def test_balanced_factorization(self, n, d, expected):
        assert dims_create(n, d) == expected

    def test_invalid_rejected(self):
        with pytest.raises(MPIError):
            dims_create(0, 2)


class TestCartComm:
    def test_coords_roundtrip(self):
        def prog(comm):
            cart = mpi.Cart_create(comm, [2, 3])
            c = cart.coords
            return (c, cart.rank_of(c))

        res, _ = mpi_run(6, prog)
        for rank, (coords, back) in enumerate(res.values):
            assert back == rank
        assert res.values[0][0] == (0, 0)
        assert res.values[5][0] == (1, 2)

    def test_dims_must_cover_comm(self):
        def prog(comm):
            mpi.Cart_create(comm, [2, 2])

        with pytest.raises(SimProcessError) as ei:
            mpi_run(6, prog)
        assert isinstance(ei.value.original, MPIError)

    def test_shift_interior_and_edges(self):
        def prog(comm):
            cart = mpi.Cart_create(comm, [2, 3])
            return (cart.Shift(0), cart.Shift(1))

        res, _ = mpi_run(6, prog)
        # rank 1 = (0, 1): row shift -> (NULL, 4); col -> (0, 2)
        assert res.values[1] == ((mpi.PROC_NULL, 4), (0, 2))
        # rank 5 = (1, 2): col shift hits the east edge
        assert res.values[5][1] == (4, mpi.PROC_NULL)

    def test_periodic_shift_wraps(self):
        def prog(comm):
            cart = mpi.Cart_create(comm, [4], periods=[True])
            return cart.Shift(0)

        res, _ = mpi_run(4, prog)
        assert res.values[0] == (3, 1)
        assert res.values[3] == (2, 0)

    def test_nonperiodic_out_of_range_coords_rejected(self):
        def prog(comm):
            cart = mpi.Cart_create(comm, [4])
            cart.rank_of([5])

        with pytest.raises(SimProcessError):
            mpi_run(4, prog)

    def test_cart_comm_still_communicates(self):
        """CartComm is a Comm: Sendrecv along a periodic ring."""
        def prog(comm):
            cart = mpi.Cart_create(comm, [comm.size], periods=[True])
            src, dst = cart.Shift(0)
            out = np.array([float(cart.rank)])
            inb = np.zeros(1)
            cart.Sendrecv(out, dest=dst, recvbuf=inb, source=src)
            return inb[0]

        res, _ = mpi_run(5, prog)
        assert res.values == [4.0, 0.0, 1.0, 2.0, 3.0]

    def test_shift_with_displacement_two(self):
        def prog(comm):
            cart = mpi.Cart_create(comm, [6], periods=[True])
            return cart.Shift(0, disp=2)

        res, _ = mpi_run(6, prog)
        assert res.values[1] == (5, 3)
