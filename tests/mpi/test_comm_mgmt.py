"""Communicator management: world init, Split, Dup, isolation."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.netmodel import zero_model
from repro.sim import Engine

from tests._spmd import mpi_run


class TestInit:
    def test_world_rank_and_size(self):
        def prog(comm):
            return (comm.rank, comm.size)

        res, _ = mpi_run(3, prog)
        assert res.values == [(0, 3), (1, 3), (2, 3)]

    def test_conflicting_models_rejected(self):
        m1, m2 = zero_model(), zero_model()
        eng = Engine(2)

        def prog(env):
            mpi.init(env, m1 if env.rank == 0 else m2)

        with pytest.raises(SimProcessError) as ei:
            eng.run(prog)
        assert isinstance(ei.value.original, MPIError)

    def test_default_model_is_gemini(self):
        eng = Engine(1)

        def prog(env):
            return mpi.init(env).world.model.name

        assert eng.run(prog).values[0] == "cray-xk7-gemini"


class TestSplit:
    def test_split_groups_by_color(self):
        def prog(comm):
            sub = comm.Split(color=comm.rank % 2)
            return (sub.rank, sub.size)

        res, _ = mpi_run(5, prog)
        # evens 0,2,4 -> local 0,1,2 of size 3; odds 1,3 -> 0,1 of size 2.
        assert res.values == [(0, 3), (0, 2), (1, 3), (1, 2), (2, 3)]

    def test_split_key_orders_ranks(self):
        def prog(comm):
            sub = comm.Split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        res, _ = mpi_run(4, prog)
        assert res.values == [3, 2, 1, 0]

    def test_split_comms_have_isolated_matching(self):
        """Same-tag traffic in two subcommunicators never crosses."""
        def prog(comm):
            sub = comm.Split(color=comm.rank % 2)
            if sub.size < 2:
                return None
            if sub.rank == 0:
                comm_val = float(comm.rank)
                sub.Send(np.array([comm_val]), dest=1, tag=0)
                return None
            buf = np.zeros(1)
            sub.Recv(buf, source=0, tag=0)
            return buf[0]

        res, _ = mpi_run(4, prog)
        # world ranks: evens (0,2): 0 sends to 2; odds (1,3): 1 sends to 3.
        assert res.values[2] == 0.0
        assert res.values[3] == 1.0

    def test_repeated_splits(self):
        def prog(comm):
            a = comm.Split(color=0)
            b = a.Split(color=a.rank % 2)
            return b.size

        res, _ = mpi_run(4, prog)
        assert res.values == [2, 2, 2, 2]


class TestDup:
    def test_dup_same_members_fresh_space(self):
        def prog(comm):
            dup = comm.Dup()
            assert dup.size == comm.size and dup.rank == comm.rank
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=7)
                dup.Send(np.array([2.0]), dest=1, tag=7)
                return None
            a, b = np.zeros(1), np.zeros(1)
            dup.Recv(b, source=0, tag=7)   # dup's message, not comm's
            comm.Recv(a, source=0, tag=7)
            return (a[0], b[0])

        res, _ = mpi_run(2, prog)
        assert res.values[1] == (1.0, 2.0)


class TestGroupTranslation:
    def test_local_ranks_used_in_subcomm(self):
        def prog(comm):
            # Put ranks 2,0 in one group; key orders them (2 first).
            color = 0 if comm.rank in (0, 2) else 1
            key = 0 if comm.rank == 2 else 1
            sub = comm.Split(color=color, key=key)
            if color == 1:
                return None
            if sub.rank == 0:  # world rank 2
                sub.Send(np.array([42.0]), dest=1)
                return "sent"
            buf = np.zeros(1)
            st = mpi.Status()
            sub.Recv(buf, source=mpi.ANY_SOURCE, status=st)
            return (buf[0], st.source)

        res, _ = mpi_run(3, prog)
        assert res.values[2] == "sent"
        assert res.values[0] == (42.0, 0)  # local source rank 0 == world 2
