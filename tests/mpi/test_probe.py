"""Blocking Probe and the dynamic-size receive idiom."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import SimDeadlockError
from repro.netmodel import uniform_model, zero_model
from repro.mpi.constants import UNDEFINED
from repro.sim.engine import Waiter

from tests._spmd import mpi_run


def test_probe_then_sized_recv():
    """The classic idiom: probe, size the buffer, receive."""
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.arange(13.0), dest=1, tag=4)
            return None
        st = mpi.Status()
        comm.Probe(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG, status=st)
        n = st.Get_count(mpi.DOUBLE)
        buf = np.zeros(n)
        comm.Recv(buf, source=st.source, tag=st.tag)
        return (n, buf.tolist())

    res, _ = mpi_run(2, prog)
    n, data = res.values[1]
    assert n == 13
    assert data == list(range(13))


def test_probe_blocks_until_message_exists():
    def prog(comm):
        if comm.rank == 0:
            comm.env.compute(3.0)
            comm.Send(np.zeros(4), dest=1, tag=1)
            return None
        st = mpi.Status()
        comm.Probe(source=0, tag=1, status=st)
        probed_at = comm.env.now
        comm.Recv(np.zeros(4), source=0, tag=1)
        return probed_at

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1] >= 3.0


def test_probe_does_not_consume_message():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.array([9.0]), dest=1, tag=2)
            return None
        comm.Probe(source=0, tag=2)
        comm.Probe(source=0, tag=2)  # still there
        buf = np.zeros(1)
        comm.Recv(buf, source=0, tag=2)
        return buf[0]

    res, _ = mpi_run(2, prog)
    assert res.values[1] == 9.0


def test_probe_respects_tag_selectivity():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.array([1.0]), dest=1, tag=10)
            comm.env.compute(1.0)
            comm.Send(np.array([2.0]), dest=1, tag=20)
            return None
        st = mpi.Status()
        comm.Probe(source=0, tag=20, status=st)  # skips tag 10
        assert st.tag == 20
        b20, b10 = np.zeros(1), np.zeros(1)
        comm.Recv(b20, source=0, tag=20)
        comm.Recv(b10, source=0, tag=10)
        return (b10[0], b20[0])

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1] == (1.0, 2.0)


def test_probe_arrival_time_covered():
    """Probing an already-arrived message advances at least to its
    arrival time on the wire."""
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(1000, dtype=np.uint8), dest=1)
            return None
        comm.env.compute(1e-2)
        t0 = comm.env.now
        comm.Probe(source=0)
        assert comm.env.now >= t0
        comm.Recv(np.zeros(1000, dtype=np.uint8), source=0)
        return True

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1]


def test_get_count_undefined_for_partial_element():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(3, dtype=np.uint8), dest=1, tag=0)
            return None
        st = mpi.Status()
        comm.Probe(source=0, status=st)
        comm.Recv(np.zeros(3, dtype=np.uint8), source=0, status=None)
        return st.Get_count(mpi.DOUBLE)  # 3 bytes != k * 8

    res, _ = mpi_run(2, prog)
    assert res.values[1] == UNDEFINED


def test_two_blocking_probes_consume_waiters_exactly_once():
    """Two blocking probes, one unexpected send each: every probe's
    waiter is registered, woken exactly once, and removed — no stale
    registrations survive in ``world.probe_waiters``."""
    def prog(comm):
        if comm.rank == 0:
            comm.env.compute(1.0)
            comm.Send(np.array([1.0]), dest=1, tag=1)
            comm.env.compute(1.0)
            comm.Send(np.array([2.0]), dest=1, tag=2)
            return None
        st1, st2 = mpi.Status(), mpi.Status()
        comm.Probe(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG, status=st1)
        a = np.zeros(1)
        comm.Recv(a, source=st1.source, tag=st1.tag)
        comm.Probe(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG, status=st2)
        b = np.zeros(1)
        comm.Recv(b, source=st2.source, tag=st2.tag)
        assert not comm.world.probe_waiters  # nothing left behind
        return (st1.tag, a[0], st2.tag, b[0])

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1] == (1, 1.0, 2, 2.0)


def test_non_matching_probe_stays_blocked():
    """A blocked probe whose pattern the unexpected send does NOT match
    keeps waiting (its waiter stays registered); if no matching message
    ever arrives, that is a deadlock — as on a real machine."""
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.array([1.0]), dest=1, tag=1)  # wrong tag
            return None
        comm.Probe(source=0, tag=7)  # never satisfied

    with pytest.raises(SimDeadlockError) as ei:
        mpi_run(2, prog)
    assert "MPI_Probe" in ei.value.blocked[1]


def test_stale_woken_probe_waiter_is_dropped():
    """White-box: an already-woken waiter left in ``probe_waiters`` is
    dead (waiters are single-use, its owner has resumed); the wake scan
    must discard it rather than keep it forever or re-wake it."""
    def prog(comm):
        if comm.rank == 0:
            comm.env.compute(1.0)  # let rank 1 register + block first
            comm.Send(np.array([5.0]), dest=1, tag=2)
            return None
        # Plant a stale (woken) entry under this rank's key before the
        # real probe registers alongside it.
        stale = Waiter(comm.env._proc, "stale probe entry")
        stale.woken = True
        key = (comm.group.gid, "p2p", comm.env.rank)
        comm.world.probe_waiters.setdefault(key, []).append(
            (mpi.ANY_SOURCE, mpi.ANY_TAG, stale))
        st = mpi.Status()
        comm.Probe(source=0, tag=2, status=st)
        assert key not in comm.world.probe_waiters  # stale entry gone too
        buf = np.zeros(1)
        comm.Recv(buf, source=0, tag=2)
        return (st.tag, buf[0])

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1] == (2, 5.0)


def test_two_probers_one_each():
    """Two messages, two blocking probes on different tags."""
    def prog(comm):
        if comm.rank == 0:
            comm.env.compute(1.0)
            comm.Send(np.array([1.0]), dest=1, tag=1)
            comm.env.compute(1.0)
            comm.Send(np.array([2.0]), dest=1, tag=2)
            return None
        st2 = mpi.Status()
        comm.Probe(source=0, tag=2, status=st2)  # waits for the later
        st1 = mpi.Status()
        comm.Probe(source=0, tag=1, status=st1)  # already there
        a, b = np.zeros(1), np.zeros(1)
        comm.Recv(a, source=0, tag=1)
        comm.Recv(b, source=0, tag=2)
        return (st1.tag, st2.tag, a[0], b[0])

    res, _ = mpi_run(2, prog)
    assert res.values[1] == (1, 2, 1.0, 2.0)
