"""Blocking Probe and the dynamic-size receive idiom."""

import numpy as np
import pytest

from repro import mpi
from repro.netmodel import uniform_model, zero_model
from repro.mpi.constants import UNDEFINED

from tests._spmd import mpi_run


def test_probe_then_sized_recv():
    """The classic idiom: probe, size the buffer, receive."""
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.arange(13.0), dest=1, tag=4)
            return None
        st = mpi.Status()
        comm.Probe(source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG, status=st)
        n = st.Get_count(mpi.DOUBLE)
        buf = np.zeros(n)
        comm.Recv(buf, source=st.source, tag=st.tag)
        return (n, buf.tolist())

    res, _ = mpi_run(2, prog)
    n, data = res.values[1]
    assert n == 13
    assert data == list(range(13))


def test_probe_blocks_until_message_exists():
    def prog(comm):
        if comm.rank == 0:
            comm.env.compute(3.0)
            comm.Send(np.zeros(4), dest=1, tag=1)
            return None
        st = mpi.Status()
        comm.Probe(source=0, tag=1, status=st)
        probed_at = comm.env.now
        comm.Recv(np.zeros(4), source=0, tag=1)
        return probed_at

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1] >= 3.0


def test_probe_does_not_consume_message():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.array([9.0]), dest=1, tag=2)
            return None
        comm.Probe(source=0, tag=2)
        comm.Probe(source=0, tag=2)  # still there
        buf = np.zeros(1)
        comm.Recv(buf, source=0, tag=2)
        return buf[0]

    res, _ = mpi_run(2, prog)
    assert res.values[1] == 9.0


def test_probe_respects_tag_selectivity():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.array([1.0]), dest=1, tag=10)
            comm.env.compute(1.0)
            comm.Send(np.array([2.0]), dest=1, tag=20)
            return None
        st = mpi.Status()
        comm.Probe(source=0, tag=20, status=st)  # skips tag 10
        assert st.tag == 20
        b20, b10 = np.zeros(1), np.zeros(1)
        comm.Recv(b20, source=0, tag=20)
        comm.Recv(b10, source=0, tag=10)
        return (b10[0], b20[0])

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1] == (1.0, 2.0)


def test_probe_arrival_time_covered():
    """Probing an already-arrived message advances at least to its
    arrival time on the wire."""
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(1000, dtype=np.uint8), dest=1)
            return None
        comm.env.compute(1e-2)
        t0 = comm.env.now
        comm.Probe(source=0)
        assert comm.env.now >= t0
        comm.Recv(np.zeros(1000, dtype=np.uint8), source=0)
        return True

    res, _ = mpi_run(2, prog, model=uniform_model())
    assert res.values[1]


def test_get_count_undefined_for_partial_element():
    def prog(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(3, dtype=np.uint8), dest=1, tag=0)
            return None
        st = mpi.Status()
        comm.Probe(source=0, status=st)
        comm.Recv(np.zeros(3, dtype=np.uint8), source=0, status=None)
        return st.Get_count(mpi.DOUBLE)  # 3 bytes != k * 8

    res, _ = mpi_run(2, prog)
    assert res.values[1] == UNDEFINED


def test_two_probers_one_each():
    """Two messages, two blocking probes on different tags."""
    def prog(comm):
        if comm.rank == 0:
            comm.env.compute(1.0)
            comm.Send(np.array([1.0]), dest=1, tag=1)
            comm.env.compute(1.0)
            comm.Send(np.array([2.0]), dest=1, tag=2)
            return None
        st2 = mpi.Status()
        comm.Probe(source=0, tag=2, status=st2)  # waits for the later
        st1 = mpi.Status()
        comm.Probe(source=0, tag=1, status=st1)  # already there
        a, b = np.zeros(1), np.zeros(1)
        comm.Recv(a, source=0, tag=1)
        comm.Recv(b, source=0, tag=2)
        return (st1.tag, st2.tag, a[0], b[0])

    res, _ = mpi_run(2, prog)
    assert res.values[1] == (1, 2, 1.0, 2.0)
