"""Generalized active-target RMA sync (Post/Start/Complete/Wait)."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.netmodel import uniform_model

from tests._spmd import mpi_run


def test_pscw_basic_put():
    def prog(comm):
        mem = np.zeros(4)
        win = mpi.Win.create(comm, mem)
        if comm.rank == 1:
            win.Post([0])
            win.Wait()
            return mem.tolist()
        if comm.rank == 0:
            win.Start([1])
            win.Put(np.arange(4.0), target_rank=1)
            win.Complete()
        return None

    res, _ = mpi_run(2, prog)
    assert res.values[1] == [0.0, 1.0, 2.0, 3.0]


def test_pscw_start_blocks_until_post():
    def prog(comm):
        mem = np.zeros(1)
        win = mpi.Win.create(comm, mem)
        if comm.rank == 1:
            comm.env.compute(5.0)  # late exposure
            win.Post([0])
            win.Wait()
            return comm.env.now
        win.Start([1])
        started_at = comm.env.now
        win.Put(np.ones(1), target_rank=1)
        win.Complete()
        return started_at

    res, _ = mpi_run(2, prog)
    assert res.values[0] >= 5.0  # origin waited for the post


def test_pscw_wait_covers_put_visibility():
    def prog(comm):
        mem = np.zeros(1000)
        win = mpi.Win.create(comm, mem)
        if comm.rank == 1:
            win.Post([0])
            win.Wait()
            return comm.env.now
        win.Start([1])
        win.Put(np.ones(1000), target_rank=1)
        win.Complete()
        return None

    res, _ = mpi_run(2, prog, model=uniform_model())
    wire = uniform_model().transport("mpi1s").wire_time(8000)
    assert res.values[1] >= wire


def test_pscw_many_origins_one_target():
    def prog(comm):
        mem = np.zeros(comm.size)
        win = mpi.Win.create(comm, mem)
        if comm.rank == 0:
            win.Post(list(range(1, comm.size)))
            win.Wait()
            return mem.tolist()
        win.Start([0])
        win.Put(np.array([float(comm.rank * 10)]), target_rank=0,
                target_offset=comm.rank)
        win.Complete()
        return None

    res, _ = mpi_run(4, prog)
    assert res.values[0] == [0.0, 10.0, 20.0, 30.0]


def test_pscw_repeated_epochs():
    def prog(comm):
        mem = np.zeros(1)
        win = mpi.Win.create(comm, mem)
        seen = []
        for step in range(3):
            if comm.rank == 1:
                win.Post([0])
                win.Wait()
                seen.append(mem[0])
            else:
                win.Start([1])
                win.Put(np.array([float(step + 1)]), target_rank=1)
                win.Complete()
        return seen

    res, _ = mpi_run(2, prog)
    assert res.values[1] == [1.0, 2.0, 3.0]


def test_put_outside_access_group_rejected():
    def prog(comm):
        win = mpi.Win.create(comm, np.zeros(1))
        if comm.rank == 1:
            win.Post([0])
            win.Wait()
            return None
        if comm.rank == 2:
            win.Post([0])
            win.Wait()
            return None
        win.Start([1])
        try:
            win.Put(np.ones(1), target_rank=2)  # not in the group
        finally:
            win.Put(np.ones(1), target_rank=1)
            win.Complete()
            win.Start([2])
            win.Put(np.ones(1), target_rank=2)
            win.Complete()

    with pytest.raises(SimProcessError) as ei:
        mpi_run(3, prog)
    assert isinstance(ei.value.original, MPIError)


def test_complete_without_start_rejected():
    def prog(comm):
        win = mpi.Win.create(comm, np.zeros(1))
        win.Complete()

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert isinstance(ei.value.original, MPIError)


def test_wait_without_post_rejected():
    def prog(comm):
        win = mpi.Win.create(comm, np.zeros(1))
        win.Wait()

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert isinstance(ei.value.original, MPIError)
