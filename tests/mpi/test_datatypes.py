"""Datatype objects: basic types, derived structs, commit discipline."""

import numpy as np
import pytest

from repro import mpi
from repro.dtypes import extract_composite
from repro.errors import MPIError, SimProcessError
from repro.mpi.datatypes import basic, type_for_composite
from repro.netmodel import uniform_model

from tests._spmd import mpi_run


class TestBasicTypes:
    def test_sizes(self):
        assert mpi.INT.size == 4
        assert mpi.DOUBLE.size == 8
        assert mpi.CHAR.size == 1
        assert mpi.BYTE.size == 1
        assert mpi.PACKED.size == 1

    def test_basic_lookup(self):
        assert basic("MPI_DOUBLE") is mpi.DOUBLE
        with pytest.raises(MPIError):
            basic("MPI_COMPLEX128")

    def test_basic_types_always_committed(self):
        assert mpi.DOUBLE.committed
        mpi.DOUBLE.check_usable()

    def test_free_basic_rejected(self):
        with pytest.raises(MPIError):
            mpi.INT.Free()


class TestDerivedTypes:
    def test_create_struct_extent(self):
        def prog(comm):
            dt = mpi.Type_create_struct(
                comm,
                blocklengths=[1, 1],
                displacements=[0, 8],
                types=[mpi.INT, mpi.DOUBLE])
            return dt.size

        res, _ = mpi_run(1, prog)
        assert res.values[0] == 16

    def test_uncommitted_use_rejected(self):
        def prog(comm):
            dt = mpi.Type_create_struct(
                comm, [1], [0], [mpi.DOUBLE])
            buf = np.zeros(1)
            comm.Send((buf, 1, dt), dest=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert isinstance(ei.value.original, MPIError)
        assert "Commit" in str(ei.value.original)

    def test_commit_then_use(self):
        def prog(comm):
            s = extract_composite("S", {"n": "int", "x": ("double", 3)})
            dt = type_for_composite(comm, s).Commit(comm)
            arr = s.zeros(2)
            arr["n"] = [1, 2]
            arr["x"][1] = [7.0, 8.0, 9.0]
            if comm.rank == 0:
                comm.Send((arr, 2, dt), dest=1)
                return None
            out = s.zeros(2)
            comm.Recv(out, source=0)
            return (int(out["n"][1]), out["x"][1].tolist())

        res, _ = mpi_run(2, prog)
        assert res.values[1] == (2, [7.0, 8.0, 9.0])

    def test_freed_type_rejected(self):
        def prog(comm):
            dt = mpi.Type_create_struct(comm, [1], [0], [mpi.DOUBLE])
            dt.Commit(comm)
            dt.Free()
            comm.Send((np.zeros(1), 1, dt), dest=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert "freed" in str(ei.value.original)

    def test_nested_derived_rejected(self):
        def prog(comm):
            inner = mpi.Type_create_struct(comm, [1], [0], [mpi.DOUBLE])
            mpi.Type_create_struct(comm, [1], [0], [inner])

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert "nested" in str(ei.value.original)

    def test_mismatched_arrays_rejected(self):
        def prog(comm):
            mpi.Type_create_struct(comm, [1, 2], [0], [mpi.INT])

        with pytest.raises(SimProcessError):
            mpi_run(1, prog)

    def test_creation_charges_model_cost(self):
        def prog(comm):
            t0 = comm.env.now
            dt = mpi.Type_create_struct(
                comm, [1] * 5, [0, 8, 16, 24, 32], [mpi.DOUBLE] * 5)
            dt.Commit(comm)
            return comm.env.now - t0

        res, _ = mpi_run(1, prog, model=uniform_model())
        m = uniform_model()
        assert res.values[0] == pytest.approx(m.struct_create_cost(5))

    def test_commit_idempotent(self):
        def prog(comm):
            dt = mpi.Type_create_struct(comm, [1], [0], [mpi.DOUBLE])
            dt.Commit(comm)
            t0 = comm.env.now
            dt.Commit(comm)  # second commit is free
            return comm.env.now - t0

        res, _ = mpi_run(1, prog, model=uniform_model())
        assert res.values[0] == 0.0

    def test_type_for_composite_matches_struct_size(self):
        def prog(comm):
            s = extract_composite("Atom", {
                "jmt": "int", "xstart": "double", "header": ("char", 80),
            })
            dt = type_for_composite(comm, s)
            return (dt.size, s.size)

        res, _ = mpi_run(1, prog)
        size_dt, size_s = res.values[0]
        assert size_dt == size_s

    def test_stats_count_struct_creation(self):
        def prog(comm):
            dt = mpi.Type_create_struct(comm, [1], [0], [mpi.DOUBLE])
            dt.Commit(comm)

        _, eng = mpi_run(1, prog)
        assert eng.stats.datatype_ops["struct_created"] == 1
        assert eng.stats.datatype_ops["struct_committed"] == 1


class TestBufferInference:
    def test_structured_array_sendable_without_explicit_type(self):
        def prog(comm):
            dt = np.dtype([("a", "i4"), ("b", "f8")], align=True)
            if comm.rank == 0:
                arr = np.zeros(3, dtype=dt)
                arr["b"] = [1.0, 2.0, 3.0]
                comm.Send(arr, dest=1)
                return None
            out = np.zeros(3, dtype=dt)
            comm.Recv(out, source=0)
            return out["b"].tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [1.0, 2.0, 3.0]
