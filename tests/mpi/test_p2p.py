"""Point-to-point semantics: matching, protocols, wildcards, timing."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimDeadlockError, SimProcessError, \
    TruncationError
from repro.netmodel import uniform_model, zero_model
from repro.netmodel.base import MPI_2SIDED, TransportParams
from repro.netmodel.base import MachineModel
from repro.util.units import usec

from tests._spmd import mpi_run


class TestBlocking:
    def test_send_recv_delivers_data(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(8.0), dest=1, tag=3)
                return None
            buf = np.zeros(8)
            comm.Recv(buf, source=0, tag=3)
            return buf.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == list(range(8))

    def test_recv_fills_status(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(4, dtype=np.int32), dest=1, tag=9)
                return None
            buf = np.zeros(4, dtype=np.int32)
            st = mpi.Status()
            comm.Recv(buf, source=mpi.ANY_SOURCE, tag=mpi.ANY_TAG, status=st)
            return (st.source, st.tag, st.nbytes, st.Get_count(mpi.INT))

        res, _ = mpi_run(2, prog)
        assert res.values[1] == (0, 9, 16, 4)

    def test_messages_nonovertaking_same_pair(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.Send(np.array([float(i)]), dest=1, tag=7)
                return None
            got = []
            for _ in range(5):
                buf = np.zeros(1)
                comm.Recv(buf, source=0, tag=7)
                got.append(buf[0])
            return got

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_tag_selectivity(self):
        """A recv with tag B skips an earlier tag-A message."""
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=1)
                comm.Send(np.array([2.0]), dest=1, tag=2)
                return None
            b2 = np.zeros(1)
            comm.Recv(b2, source=0, tag=2)
            b1 = np.zeros(1)
            comm.Recv(b1, source=0, tag=1)
            return (b1[0], b2[0])

        res, _ = mpi_run(2, prog)
        assert res.values[1] == (1.0, 2.0)

    def test_any_source_matches_first_posted(self):
        def prog(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    buf = np.zeros(1)
                    st = mpi.Status()
                    comm.Recv(buf, source=mpi.ANY_SOURCE, tag=0, status=st)
                    got.append((st.source, buf[0]))
                return got
            comm.Send(np.array([float(comm.rank)]), dest=0, tag=0)
            return None

        res, _ = mpi_run(3, prog)
        # Deterministic scheduling: rank 1 sends before rank 2.
        assert res.values[0] == [(1, 1.0), (2, 2.0)]

    def test_truncation_rejected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10), dest=1)
            else:
                comm.Recv(np.zeros(2), source=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(2, prog)
        assert isinstance(ei.value.original, TruncationError)

    def test_shorter_message_ok(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.array([5.0]), dest=1)
                return None
            buf = np.zeros(10)
            st = mpi.Status()
            comm.Recv(buf, source=0, status=st)
            return (buf[0], st.nbytes)

        res, _ = mpi_run(2, prog)
        assert res.values[1] == (5.0, 8)

    def test_proc_null_send_recv_noop(self):
        def prog(comm):
            buf = np.full(3, 7.0)
            comm.Send(buf, dest=mpi.PROC_NULL)
            comm.Recv(buf, source=mpi.PROC_NULL)
            return buf.tolist()

        res, _ = mpi_run(1, prog)
        assert res.values[0] == [7.0] * 3

    def test_unmatched_recv_deadlocks_with_diagnostic(self):
        def prog(comm):
            if comm.rank == 1:
                comm.Recv(np.zeros(1), source=0, tag=5)

        with pytest.raises(SimDeadlockError) as ei:
            mpi_run(2, prog)
        assert 1 in ei.value.blocked

    def test_send_to_self_with_posted_irecv(self):
        def prog(comm):
            buf = np.zeros(3)
            req = comm.Irecv(buf, source=0, tag=1)
            comm.Send(np.arange(3.0), dest=0, tag=1)
            comm.Wait(req)
            return buf.tolist()

        res, _ = mpi_run(1, prog)
        assert res.values[0] == [0.0, 1.0, 2.0]

    def test_invalid_peer_rejected(self):
        def prog(comm):
            comm.Send(np.zeros(1), dest=5)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(2, prog)
        assert isinstance(ei.value.original, MPIError)

    def test_negative_tag_rejected(self):
        def prog(comm):
            comm.Send(np.zeros(1), dest=0, tag=-7)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert isinstance(ei.value.original, MPIError)

    def test_count_prefix_send(self):
        def prog(comm):
            if comm.rank == 0:
                data = np.arange(10.0)
                comm.Send((data, 4, mpi.DOUBLE), dest=1)
                return None
            buf = np.zeros(4)
            comm.Recv(buf, source=0)
            return buf.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0]

    def test_count_exceeding_buffer_rejected(self):
        def prog(comm):
            comm.Send((np.zeros(2), 5, mpi.DOUBLE), dest=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert isinstance(ei.value.original, MPIError)


class TestNonblocking:
    def test_isend_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.Isend(np.array([42.0]), dest=1)
                comm.Wait(req)
                return None
            buf = np.zeros(1)
            req = comm.Irecv(buf, source=0)
            comm.Wait(req)
            return buf[0]

        res, _ = mpi_run(2, prog)
        assert res.values[1] == 42.0

    def test_waitall_completes_everything(self):
        def prog(comm):
            n = 5
            if comm.rank == 0:
                reqs = [comm.Isend(np.array([float(i)]), dest=1, tag=i)
                        for i in range(n)]
                comm.Waitall(reqs)
                return None
            bufs = [np.zeros(1) for _ in range(n)]
            reqs = [comm.Irecv(bufs[i], source=0, tag=i) for i in range(n)]
            comm.Waitall(reqs)
            return [b[0] for b in bufs]

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_wait_on_done_request_is_idempotent(self):
        def prog(comm):
            buf = np.zeros(1)
            req = comm.Irecv(buf, source=0)
            comm.Send(np.array([1.0]), dest=0)
            comm.Wait(req)
            comm.Wait(req)  # second wait: no-op
            return buf[0]

        res, _ = mpi_run(1, prog)
        assert res.values[0] == 1.0

    def test_test_polls_until_complete(self):
        def prog(comm):
            if comm.rank == 0:
                comm.compute_marker = None
                buf = np.zeros(1)
                req = comm.Irecv(buf, source=1)
                polls = 0
                while not comm.Test(req):
                    polls += 1
                return (buf[0], polls >= 0)
            comm.env.compute(1e-3)
            comm.Send(np.array([9.0]), dest=0)
            return None

        res, _ = mpi_run(2, prog, model=uniform_model(),
                         max_time=10.0)
        assert res.values[0][0] == 9.0

    def test_null_request_wait(self):
        def prog(comm):
            req = comm.Isend(np.zeros(1), dest=mpi.PROC_NULL)
            comm.Wait(req)
            req2 = comm.Irecv(np.zeros(1), source=mpi.PROC_NULL)
            comm.Wait(req2)
            return "ok"

        res, _ = mpi_run(1, prog)
        assert res.values[0] == "ok"


class TestSendrecv:
    def test_ring_shift_no_deadlock(self):
        """The classic ring exchange that deadlocks with blocking sends
        of rendezvous size works with Sendrecv."""
        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            out = np.full(2000, float(comm.rank))  # rendezvous-sized
            inb = np.zeros(2000)
            comm.Sendrecv(out, dest=nxt, recvbuf=inb, source=prev)
            return inb[0]

        res, _ = mpi_run(4, prog, model=uniform_model())
        assert res.values == [3.0, 0.0, 1.0, 2.0]


class TestProtocols:
    def test_blocking_rendezvous_requires_receiver(self):
        """A large blocking Send genuinely blocks until the recv posts."""
        def prog(comm):
            if comm.rank == 0:
                big = np.zeros(10_000)  # > uniform eager threshold (1024B)
                comm.Send(big, dest=1)
                return comm.env.now
            comm.env.compute(5.0)  # receiver is late
            comm.Recv(np.zeros(10_000), source=0)
            return comm.env.now

        res, _ = mpi_run(2, prog, model=uniform_model())
        # The sender cannot complete before the receiver showed up at t=5.
        assert res.values[0] >= 5.0

    def test_eager_send_returns_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                small = np.zeros(8)  # eager
                comm.Send(small, dest=1)
                return comm.env.now
            comm.env.compute(5.0)
            comm.Recv(np.zeros(8), source=0)
            return comm.env.now

        res, _ = mpi_run(2, prog, model=uniform_model())
        assert res.values[0] < 1.0  # sender long done before t=5

    def test_unmatched_rendezvous_sends_deadlock(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(10_000), dest=1)
            # rank 1 never posts the receive

        with pytest.raises(SimDeadlockError):
            mpi_run(2, prog, model=uniform_model())


class TestTiming:
    def test_eager_timing_hand_computed(self):
        """Uniform model: o=1us, L=1us, 1GB/s. 100B eager message."""
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100, dtype=np.uint8), dest=1)
                return comm.env.now
            comm.Recv(np.zeros(100, dtype=np.uint8), source=0)
            return comm.env.now

        res, _ = mpi_run(2, prog, model=uniform_model())
        # Sender: o_send = 1us.
        assert res.values[0] == pytest.approx(1 * usec)
        # Receiver: sender posts at 1us, wire = 1us + 100ns, recv
        # overhead 1us -> 3.1us.
        assert res.values[1] == pytest.approx(3.1 * usec)

    def test_recv_posted_late_completes_at_post_plus_overhead(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(100, dtype=np.uint8), dest=1)
                return None
            comm.env.compute(1.0)  # message long since arrived
            comm.Recv(np.zeros(100, dtype=np.uint8), source=0)
            return comm.env.now

        res, _ = mpi_run(2, prog, model=uniform_model())
        assert res.values[1] == pytest.approx(1.0 + 1 * usec)

    def test_wait_overhead_charged_per_call(self):
        model = uniform_model()

        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.Isend(np.zeros(8), dest=1, tag=i, pooled=True)
                        for i in range(10)]
                t0 = comm.env.now
                for r in reqs:
                    comm.Wait(r)
                return comm.env.now - t0
            for i in range(10):
                comm.Recv(np.zeros(8), source=0, tag=i)
            return None

        res, _ = mpi_run(2, prog, model=model)
        # 10 waits x 1us overhead; all requests already complete (eager).
        assert res.values[0] == pytest.approx(10 * usec)

    def test_waitall_cheaper_than_wait_loop(self):
        """The heart of the paper's Figure 4 ablation."""
        model = uniform_model()
        n = 50

        def sender_waits(comm):
            if comm.rank == 0:
                reqs = [comm.Isend(np.zeros(8), dest=1, tag=i, pooled=True)
                        for i in range(n)]
                t0 = comm.env.now
                for r in reqs:
                    comm.Wait(r)
                return comm.env.now - t0
            for i in range(n):
                comm.Recv(np.zeros(8), source=0, tag=i)
            return None

        def sender_waitall(comm):
            if comm.rank == 0:
                reqs = [comm.Isend(np.zeros(8), dest=1, tag=i, pooled=True)
                        for i in range(n)]
                t0 = comm.env.now
                comm.Waitall(reqs)
                return comm.env.now - t0
            for i in range(n):
                comm.Recv(np.zeros(8), source=0, tag=i)
            return None

        r1, _ = mpi_run(2, sender_waits, model=model)
        r2, _ = mpi_run(2, sender_waitall, model=model)
        assert r2.values[0] < r1.values[0]

    def test_request_alloc_charged_only_unpooled(self):
        tp = TransportParams(name=MPI_2SIDED, alpha=0.0, bandwidth=1e30,
                             eager_threshold=1 << 62)
        model = MachineModel(name="alloc-test",
                             transports={MPI_2SIDED: tp},
                             request_alloc_overhead=1.0 * usec)

        def prog(comm):
            if comm.rank == 0:
                t0 = comm.env.now
                comm.Isend(np.zeros(8), dest=1)
                user = comm.env.now - t0
                t0 = comm.env.now
                comm.Isend(np.zeros(8), dest=1, tag=1, pooled=True)
                pooled = comm.env.now - t0
                return (user, pooled)
            comm.Recv(np.zeros(8), source=0, tag=0)
            comm.Recv(np.zeros(8), source=0, tag=1)
            return None

        res, _ = mpi_run(2, prog, model=model)
        user, pooled = res.values[0]
        assert user == pytest.approx(1 * usec)
        assert pooled == pytest.approx(0.0)


class TestProbe:
    def test_iprobe_sees_unexpected_message(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(3.0), dest=1, tag=4)
                return None
            # Let the message arrive first.
            comm.env.compute(1.0)
            st = mpi.Status()
            found = comm.Iprobe(source=0, tag=4, status=st)
            buf = np.zeros(3)
            comm.Recv(buf, source=0, tag=4)
            return (found, st.nbytes)

        res, _ = mpi_run(2, prog)
        assert res.values[1] == (True, 24)

    def test_iprobe_false_when_nothing(self):
        def prog(comm):
            return comm.Iprobe(source=mpi.ANY_SOURCE)

        res, _ = mpi_run(2, prog)
        assert res.values == [False, False]


class TestManyToOne:
    def test_fan_in_any_source(self):
        def prog(comm):
            if comm.rank == 0:
                total = 0.0
                for _ in range(comm.size - 1):
                    buf = np.zeros(1)
                    comm.Recv(buf, source=mpi.ANY_SOURCE)
                    total += buf[0]
                return total
            comm.Send(np.array([float(comm.rank)]), dest=0)
            return None

        res, _ = mpi_run(6, prog)
        assert res.values[0] == sum(range(1, 6))
