"""Property-based tests of the MPI layer's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import mpi
from repro.netmodel import uniform_model, zero_model
from repro.sim import Engine

from tests._spmd import mpi_run


# A schedule: for each of R rounds, each sender rank sends one tagged
# message to a receiver; receivers post matching receives in the same
# per-pair order. Well-formed by construction.
@st.composite
def schedules(draw):
    nprocs = draw(st.integers(min_value=2, max_value=5))
    n_msgs = draw(st.integers(min_value=1, max_value=12))
    msgs = []
    for i in range(n_msgs):
        src = draw(st.integers(min_value=0, max_value=nprocs - 1))
        dst = draw(st.integers(min_value=0, max_value=nprocs - 1))
        size = draw(st.integers(min_value=1, max_value=64))
        msgs.append((src, dst, i, size))
    return nprocs, msgs


@given(schedules())
@settings(max_examples=40, deadline=None)
def test_property_every_message_delivered_exactly_once(schedule):
    nprocs, msgs = schedule

    def prog(comm):
        reqs = []
        received = {}
        for src, dst, tag, size in msgs:
            if comm.rank == dst:
                buf = np.zeros(size)
                received[tag] = buf
                reqs.append(comm.Irecv(buf, source=src, tag=tag))
        for src, dst, tag, size in msgs:
            if comm.rank == src:
                payload = np.full(size, float(tag + 1))
                reqs.append(comm.Isend(payload, dest=dst, tag=tag))
        comm.Waitall(reqs)
        return {tag: buf[0] for tag, buf in received.items()}

    res, _ = mpi_run(nprocs, prog)
    for src, dst, tag, size in msgs:
        assert res.values[dst][tag] == float(tag + 1)


@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=30, deadline=None)
def test_property_fifo_per_pair_with_same_tag(nprocs, n):
    """Same (source, dest, tag): messages never overtake."""
    def prog(comm):
        if comm.rank == 0:
            for i in range(n):
                comm.Send(np.array([float(i)]), dest=nprocs - 1, tag=5)
            return None
        if comm.rank == nprocs - 1:
            got = []
            for _ in range(n):
                buf = np.zeros(1)
                comm.Recv(buf, source=0, tag=5)
                got.append(buf[0])
            return got
        return None

    res, _ = mpi_run(nprocs, prog)
    assert res.values[nprocs - 1] == [float(i) for i in range(n)]


@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=3),
       st.booleans())
@settings(max_examples=25, deadline=None)
def test_property_clocks_monotone_and_finite(nprocs, extra_compute, eager):
    """Virtual finish times are finite and >= any compute charged."""
    model = uniform_model() if eager else zero_model()

    def prog(comm):
        comm.env.compute(extra_compute * 1e-6)
        nxt = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        out = np.full(16, float(comm.rank))
        inb = np.zeros(16)
        comm.Sendrecv(out, dest=nxt, recvbuf=inb, source=prev)
        return comm.env.now

    res, _ = mpi_run(nprocs, prog, model=model)
    for t in res.values:
        assert np.isfinite(t)
        assert t >= extra_compute * 1e-6


@given(st.lists(st.integers(min_value=1, max_value=100), min_size=1,
                max_size=10))
@settings(max_examples=30, deadline=None)
def test_property_waitall_time_equals_max_of_waits(sizes):
    """Waiting on requests in any order ends at the same virtual time
    (completion is a max, not a sum)."""
    model = uniform_model()

    def make(order_reversed):
        def prog(comm):
            reqs = []
            if comm.rank == 0:
                for i, n in enumerate(sizes):
                    reqs.append(comm.Isend(np.zeros(n), dest=1, tag=i,
                                           pooled=True))
            else:
                for i, n in enumerate(sizes):
                    reqs.append(comm.Irecv(np.zeros(n), source=0,
                                           tag=i, pooled=True))
            if order_reversed:
                reqs = reqs[::-1]
            for r in reqs:
                comm._wait_quiet(r)
            return comm.env.now

        return prog

    res_a, _ = mpi_run(2, make(False), model=model)
    res_b, _ = mpi_run(2, make(True), model=model)
    assert res_a.values == pytest.approx(res_b.values)


@given(st.integers(min_value=2, max_value=6))
@settings(max_examples=15, deadline=None)
def test_property_barrier_is_synchronizing(nprocs):
    """After a barrier, everyone's clock >= every arrival time."""
    model = uniform_model()

    def prog(comm):
        comm.env.compute(comm.rank * 1e-6)
        arrival = comm.env.now
        comm.Barrier()
        return (arrival, comm.env.now)

    res, _ = mpi_run(nprocs, prog, model=model)
    max_arrival = max(a for a, _ in res.values)
    for _, after in res.values:
        assert after >= max_arrival


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=20, deadline=None)
def test_property_bcast_delivers_everywhere(nprocs, size):
    def prog(comm):
        buf = (np.arange(float(size)) if comm.rank == 0
               else np.zeros(size))
        comm.Bcast(buf, root=0)
        return buf.sum()

    res, _ = mpi_run(nprocs, prog)
    expected = float(sum(range(size)))
    assert res.values == [expected] * nprocs
