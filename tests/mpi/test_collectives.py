"""Collectives: data correctness and cost emergence."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.netmodel import uniform_model

from tests._spmd import mpi_run


class TestBarrier:
    def test_barrier_aligns_clocks(self):
        def prog(comm):
            comm.env.compute(float(comm.rank))
            comm.Barrier()
            return comm.env.now

        res, _ = mpi_run(4, prog, model=uniform_model())
        assert len(set(res.values)) == 1
        assert res.values[0] >= 3.0

    def test_barrier_counts_stats(self):
        def prog(comm):
            comm.Barrier()
            comm.Barrier()

        _, eng = mpi_run(3, prog)
        assert eng.stats.sync_calls["barrier"] == 6  # 2 per rank


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8, 13])
class TestBcast:
    def test_bcast_from_zero(self, size):
        def prog(comm):
            buf = (np.arange(5.0) if comm.rank == 0 else np.zeros(5))
            comm.Bcast(buf, root=0)
            return buf.tolist()

        res, _ = mpi_run(size, prog)
        assert all(v == [0, 1, 2, 3, 4] for v in res.values)

    def test_bcast_nonzero_root(self, size):
        root = size - 1

        def prog(comm):
            buf = (np.full(3, 9.0) if comm.rank == root else np.zeros(3))
            comm.Bcast(buf, root=root)
            return buf.tolist()

        res, _ = mpi_run(size, prog)
        assert all(v == [9.0] * 3 for v in res.values)


class TestReduce:
    @pytest.mark.parametrize("size", [1, 2, 4, 7])
    def test_reduce_sum(self, size):
        def prog(comm):
            send = np.full(3, float(comm.rank + 1))
            recv = np.zeros(3) if comm.rank == 0 else None
            comm.Reduce(send, recv, op="sum", root=0)
            return None if recv is None else recv.tolist()

        res, _ = mpi_run(size, prog)
        expected = float(sum(range(1, size + 1)))
        assert res.values[0] == [expected] * 3

    def test_reduce_max_nonzero_root(self):
        def prog(comm):
            send = np.array([float(comm.rank)])
            recv = np.zeros(1) if comm.rank == 2 else None
            comm.Reduce(send, recv, op="max", root=2)
            return None if recv is None else recv[0]

        res, _ = mpi_run(5, prog)
        assert res.values[2] == 4.0

    def test_unknown_op_rejected(self):
        def prog(comm):
            comm.Reduce(np.zeros(1), np.zeros(1), op="xor", root=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(2, prog)
        assert isinstance(ei.value.original, MPIError)

    def test_root_without_recvbuf_rejected(self):
        def prog(comm):
            comm.Reduce(np.zeros(1), None, op="sum", root=0)

        with pytest.raises(SimProcessError):
            mpi_run(2, prog)


class TestAllreduce:
    @pytest.mark.parametrize("size", [1, 3, 6])
    def test_allreduce_sum(self, size):
        def prog(comm):
            send = np.array([float(comm.rank)])
            recv = np.zeros(1)
            comm.Allreduce(send, recv, op="sum")
            return recv[0]

        res, _ = mpi_run(size, prog)
        expected = float(sum(range(size)))
        assert res.values == [expected] * size


class TestGatherScatter:
    def test_gather(self):
        def prog(comm):
            send = np.full(2, float(comm.rank))
            recv = np.zeros((comm.size, 2)) if comm.rank == 0 else None
            comm.Gather(send, recv, root=0)
            return None if recv is None else recv[:, 0].tolist()

        res, _ = mpi_run(4, prog)
        assert res.values[0] == [0.0, 1.0, 2.0, 3.0]

    def test_scatter(self):
        def prog(comm):
            send = None
            if comm.rank == 0:
                send = np.arange(float(comm.size * 3)).reshape(comm.size, 3)
            recv = np.zeros(3)
            comm.Scatter(send, recv, root=0)
            return recv.tolist()

        res, _ = mpi_run(3, prog)
        assert res.values[1] == [3.0, 4.0, 5.0]

    def test_gather_wrong_shape_rejected(self):
        def prog(comm):
            recv = np.zeros((2, 2)) if comm.rank == 0 else None
            comm.Gather(np.zeros(2), recv, root=0)

        with pytest.raises(SimProcessError):
            mpi_run(4, prog)

    def test_allgather(self):
        def prog(comm):
            send = np.array([float(comm.rank) * 10])
            recv = np.zeros((comm.size, 1))
            comm.Allgather(send, recv)
            return recv[:, 0].tolist()

        res, _ = mpi_run(4, prog)
        assert all(v == [0.0, 10.0, 20.0, 30.0] for v in res.values)


class TestAlltoall:
    @pytest.mark.parametrize("size", [1, 2, 4, 5])
    def test_alltoall_permutes_blocks(self, size):
        def prog(comm):
            send = np.array([[comm.rank * 100.0 + j] for j in range(size)])
            recv = np.zeros((size, 1))
            comm.Alltoall(send, recv)
            return recv[:, 0].tolist()

        res, _ = mpi_run(size, prog)
        for r, got in enumerate(res.values):
            assert got == [j * 100.0 + r for j in range(size)]


class TestCollectiveIsolation:
    def test_collective_traffic_invisible_to_wildcard_recv(self):
        """A pending wildcard recv must not swallow bcast tree traffic."""
        def prog(comm):
            if comm.rank == 1:
                user = np.zeros(1)
                req = comm.Irecv(user, source=mpi.ANY_SOURCE,
                                 tag=mpi.ANY_TAG)
                buf = np.zeros(4)
                comm.Bcast(buf, root=0)
                comm.Send(np.array([1.0]), dest=1)  # satisfy the irecv
                comm.Wait(req)
                return (buf.tolist(), user[0])
            buf = np.arange(4.0) if comm.rank == 0 else np.zeros(4)
            comm.Bcast(buf, root=0)
            return buf.tolist()

        res, _ = mpi_run(3, prog)
        assert res.values[1] == ([0.0, 1.0, 2.0, 3.0], 1.0)

    def test_collectives_on_split_subgroups(self):
        def prog(comm):
            sub = comm.Split(color=comm.rank % 2)
            send = np.array([1.0])
            recv = np.zeros(1)
            sub.Allreduce(send, recv, op="sum")
            return recv[0]

        res, _ = mpi_run(5, prog)
        # evens: ranks 0,2,4 -> 3 members; odds: 1,3 -> 2 members.
        assert res.values == [3.0, 2.0, 3.0, 2.0, 3.0]


class TestCollectiveCost:
    def test_bcast_cost_scales_logarithmically(self):
        def prog_factory():
            def prog(comm):
                buf = np.zeros(8)
                comm.Bcast(buf, root=0)
                return comm.env.now
            return prog

        res4, _ = mpi_run(4, prog_factory(), model=uniform_model())
        res16, _ = mpi_run(16, prog_factory(), model=uniform_model())
        t4 = max(res4.values)
        t16 = max(res16.values)
        # Binomial tree: depth 2 -> depth 4, not 4x the ranks' cost.
        assert t16 < t4 * 3
        assert t16 > t4
