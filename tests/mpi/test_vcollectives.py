"""Gatherv/Scatterv, Sendrecv_replace, and remaining reduce ops."""

import numpy as np
import pytest

from repro.errors import MPIError, SimProcessError

from tests._spmd import mpi_run


class TestGatherv:
    def test_variable_counts(self):
        def prog(comm):
            counts = [r + 1 for r in range(comm.size)]
            mine = np.full(counts[comm.rank], float(comm.rank))
            recv = (np.zeros(sum(counts)) if comm.rank == 0 else None)
            comm.Gatherv(mine, recv, counts if comm.rank == 0 else None,
                         root=0)
            return recv.tolist() if comm.rank == 0 else None

        res, _ = mpi_run(3, prog)
        assert res.values[0] == [0.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_zero_count_contribution(self):
        def prog(comm):
            counts = [0, 2]
            mine = np.full(counts[comm.rank], 7.0)
            recv = np.zeros(2) if comm.rank == 0 else None
            comm.Gatherv(mine, recv, counts if comm.rank == 0 else None,
                         root=0)
            return recv.tolist() if comm.rank == 0 else None

        res, _ = mpi_run(2, prog)
        assert res.values[0] == [7.0, 7.0]

    def test_counts_overflow_rejected(self):
        def prog(comm):
            recv = np.zeros(1) if comm.rank == 0 else None
            comm.Gatherv(np.zeros(2), recv,
                         [2, 2] if comm.rank == 0 else None, root=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(2, prog)
        assert isinstance(ei.value.original, MPIError)


class TestScatterv:
    def test_variable_counts(self):
        def prog(comm):
            counts = [1, 3]
            send = (np.arange(4.0) if comm.rank == 0 else None)
            recv = np.zeros(counts[comm.rank])
            comm.Scatterv(send, counts if comm.rank == 0 else None,
                          recv, root=0)
            return recv.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[0] == [0.0]
        assert res.values[1] == [1.0, 2.0, 3.0]

    def test_roundtrip_with_gatherv(self):
        def prog(comm):
            counts = [2, 1, 3]
            send = (np.arange(6.0) * 10 if comm.rank == 1 else None)
            recv = np.zeros(counts[comm.rank])
            comm.Scatterv(send, counts if comm.rank == 1 else None,
                          recv, root=1)
            recv += 1.0
            back = np.zeros(6) if comm.rank == 1 else None
            comm.Gatherv(recv, back,
                         counts if comm.rank == 1 else None, root=1)
            return back.tolist() if comm.rank == 1 else None

        res, _ = mpi_run(3, prog)
        assert res.values[1] == [1.0, 11.0, 21.0, 31.0, 41.0, 51.0]


class TestSendrecvReplace:
    def test_ring_rotation_in_place(self):
        def prog(comm):
            buf = np.full(3, float(comm.rank))
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            comm.Sendrecv_replace(buf, dest=nxt, source=prev)
            return buf[0]

        res, _ = mpi_run(4, prog)
        assert res.values == [3.0, 0.0, 1.0, 2.0]

    def test_pairwise_swap(self):
        def prog(comm):
            buf = np.array([float(comm.rank * 100)])
            partner = comm.rank ^ 1
            comm.Sendrecv_replace(buf, dest=partner, source=partner)
            return buf[0]

        res, _ = mpi_run(2, prog)
        assert res.values == [100.0, 0.0]

    def test_non_array_rejected(self):
        def prog(comm):
            comm.Sendrecv_replace([1, 2], dest=0, source=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert isinstance(ei.value.original, MPIError)


class TestReduceOps:
    @pytest.mark.parametrize("op,expected", [
        ("sum", 6.0), ("prod", 6.0), ("max", 3.0), ("min", 1.0),
    ])
    def test_all_ops(self, op, expected):
        def prog(comm):
            send = np.array([float(comm.rank + 1)])
            recv = np.zeros(1) if comm.rank == 0 else None
            comm.Reduce(send, recv, op=op, root=0)
            return recv[0] if comm.rank == 0 else None

        res, _ = mpi_run(3, prog)
        assert res.values[0] == expected
