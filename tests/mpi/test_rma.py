"""One-sided RMA window semantics (the MPI_1SIDE directive target)."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.netmodel import uniform_model

from tests._spmd import mpi_run


class TestPutGet:
    def test_put_fence_delivers(self):
        def prog(comm):
            mem = np.zeros(4)
            win = mpi.Win.create(comm, mem)
            if comm.rank == 0:
                win.Put(np.arange(4.0), target_rank=1)
            win.Fence()
            return mem.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [0.0, 1.0, 2.0, 3.0]

    def test_put_with_offset(self):
        def prog(comm):
            mem = np.zeros(6)
            win = mpi.Win.create(comm, mem)
            if comm.rank == 0:
                win.Put(np.array([9.0, 8.0]), target_rank=1,
                        target_offset=3)
            win.Fence()
            return mem.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [0, 0, 0, 9.0, 8.0, 0]

    def test_get_reads_remote(self):
        def prog(comm):
            mem = np.full(3, float(comm.rank + 1))
            win = mpi.Win.create(comm, mem)
            win.Fence()
            out = np.zeros(3)
            if comm.rank == 1:
                win.Get(out, target_rank=0)
            win.Fence()
            return out.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [1.0, 1.0, 1.0]

    def test_put_out_of_bounds_rejected(self):
        def prog(comm):
            win = mpi.Win.create(comm, np.zeros(2))
            win.Put(np.zeros(5), target_rank=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert isinstance(ei.value.original, MPIError)

    def test_put_dtype_mismatch_rejected(self):
        def prog(comm):
            win = mpi.Win.create(comm, np.zeros(4))
            win.Put(np.zeros(2, dtype=np.int32), target_rank=0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert "dtype" in str(ei.value.original)

    def test_asymmetric_window_sizes_allowed(self):
        def prog(comm):
            mem = np.zeros(10 if comm.rank == 0 else 2)
            win = mpi.Win.create(comm, mem)
            if comm.rank == 1:
                win.Put(np.full(8, 5.0), target_rank=0, target_offset=2)
            win.Fence()
            return mem.sum()

        res, _ = mpi_run(2, prog)
        assert res.values[0] == 40.0


class TestFenceTiming:
    def test_fence_covers_put_completion(self):
        def prog(comm):
            win = mpi.Win.create(comm, np.zeros(1000))
            t0 = comm.env.now
            if comm.rank == 0:
                win.Put(np.ones(1000), target_rank=1)
            win.Fence()
            return comm.env.now - t0

        res, _ = mpi_run(2, prog, model=uniform_model())
        m = uniform_model()
        wire = m.transport("mpi1s").wire_time(8000)
        # Everyone leaves the fence no earlier than the put's visibility.
        assert all(t >= wire for t in res.values)

    def test_fence_epochs_are_separate(self):
        """Reads happen in put-free epochs (the MPI RMA rules require
        this; reading concurrently with a same-epoch put is a race)."""
        def prog(comm):
            mem = np.zeros(1)
            win = mpi.Win.create(comm, mem)
            win.Fence()
            if comm.rank == 0:
                win.Put(np.array([1.0]), target_rank=1)
            win.Fence()
            first = mem[0]   # epoch with no puts: safe to read
            win.Fence()
            if comm.rank == 1:
                win.Put(np.array([2.0]), target_rank=0)
            win.Fence()
            return (first, mem[0])

        res, _ = mpi_run(2, prog)
        assert res.values[0] == (0.0, 2.0)
        assert res.values[1] == (1.0, 1.0)


class TestLockUnlock:
    def test_passive_target_epoch(self):
        def prog(comm):
            mem = np.zeros(2)
            win = mpi.Win.create(comm, mem)
            if comm.rank == 0:
                win.Lock(1)
                win.Put(np.array([3.0, 4.0]), target_rank=1)
                win.Unlock(1)
                comm.Send(np.zeros(0, dtype=np.uint8), dest=1)  # notify
            else:
                comm.Recv(np.zeros(0, dtype=np.uint8), source=0)
            return mem.tolist()

        res, _ = mpi_run(2, prog)
        assert res.values[1] == [3.0, 4.0]

    def test_double_lock_rejected(self):
        def prog(comm):
            win = mpi.Win.create(comm, np.zeros(1))
            win.Lock(0)
            win.Lock(0)

        with pytest.raises(SimProcessError) as ei:
            mpi_run(1, prog)
        assert "locked" in str(ei.value.original)

    def test_unlock_without_lock_rejected(self):
        def prog(comm):
            win = mpi.Win.create(comm, np.zeros(1))
            win.Unlock(0)

        with pytest.raises(SimProcessError):
            mpi_run(1, prog)


class TestMultipleWindows:
    def test_two_windows_are_independent(self):
        def prog(comm):
            a = np.zeros(2)
            b = np.zeros(2)
            win_a = mpi.Win.create(comm, a)
            win_b = mpi.Win.create(comm, b)
            if comm.rank == 0:
                win_a.Put(np.array([1.0, 1.0]), target_rank=1)
                win_b.Put(np.array([2.0, 2.0]), target_rank=1)
            win_a.Fence()
            win_b.Fence()
            return (a.tolist(), b.tolist())

        res, _ = mpi_run(2, prog)
        assert res.values[1] == ([1.0, 1.0], [2.0, 2.0])

    def test_stats_count_rma_messages(self):
        def prog(comm):
            win = mpi.Win.create(comm, np.zeros(4))
            if comm.rank == 0:
                win.Put(np.ones(4), target_rank=1)
            win.Fence()

        _, eng = mpi_run(2, prog)
        assert eng.stats.messages["mpi1s"] == 1
        assert eng.stats.bytes["mpi1s"] == 32
        assert eng.stats.sync_calls["fence"] == 2
