"""MPI_Pack / MPI_Unpack semantics (the Listing-4 code path)."""

import numpy as np
import pytest

from repro import mpi
from repro.errors import MPIError, SimProcessError
from repro.netmodel import uniform_model

from tests._spmd import mpi_run


def test_pack_unpack_roundtrip_over_send():
    """Transcription of the Listing-4 idiom: pack scalars + arrays,
    ship as MPI_PACKED, unpack on the other side."""
    def prog(comm):
        s = 1024
        if comm.rank == 0:
            buf = bytearray(s)
            pos = 0
            pos = mpi.Pack(comm, np.array([7], dtype=np.int32), buf, pos)
            pos = mpi.Pack(comm, np.array([3.5]), buf, pos)
            pos = mpi.Pack(comm, np.arange(6.0), buf, pos)
            comm.Send((np.frombuffer(bytes(buf), dtype=np.uint8), pos,
                       mpi.PACKED), dest=1)
            return None
        raw = np.zeros(s, dtype=np.uint8)
        st = mpi.Status()
        comm.Recv(raw, source=0, status=st)
        data = raw.tobytes()
        pos = 0
        n = np.zeros(1, dtype=np.int32)
        pos = mpi.Unpack(comm, data, pos, n)
        x = np.zeros(1)
        pos = mpi.Unpack(comm, data, pos, x)
        arr = np.zeros(6)
        pos = mpi.Unpack(comm, data, pos, arr)
        return (int(n[0]), float(x[0]), arr.tolist(), st.nbytes)

    res, _ = mpi_run(2, prog)
    n, x, arr, nbytes = res.values[1]
    assert n == 7
    assert x == 3.5
    assert arr == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    assert nbytes == 4 + 8 + 48


def test_pack_size():
    assert mpi.pack_size(10, mpi.DOUBLE) == 80
    assert mpi.pack_size(3, mpi.INT) == 12


def test_pack_overflow_rejected():
    def prog(comm):
        buf = bytearray(4)
        mpi.Pack(comm, np.zeros(10), buf, 0)

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert isinstance(ei.value.original, MPIError)


def test_unpack_underflow_rejected():
    def prog(comm):
        mpi.Unpack(comm, b"\x00" * 4, 0, np.zeros(10))

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert "underflow" in str(ei.value.original)


def test_pack_charges_per_byte_cost():
    def prog(comm):
        buf = bytearray(8000)
        t0 = comm.env.now
        mpi.Pack(comm, np.zeros(1000), buf, 0)
        return comm.env.now - t0

    res, _ = mpi_run(1, prog, model=uniform_model())
    m = uniform_model()
    assert res.values[0] == pytest.approx(m.pack_cost(8000))


def test_pack_counts_stats():
    def prog(comm):
        buf = bytearray(64)
        pos = mpi.Pack(comm, np.zeros(2), buf, 0)
        mpi.Unpack(comm, bytes(buf), 0, np.zeros(2))
        return pos

    _, eng = mpi_run(1, prog)
    assert eng.stats.datatype_ops["pack"] == 1
    assert eng.stats.datatype_ops["unpack"] == 1


def test_pack_non_array_rejected():
    def prog(comm):
        mpi.Pack(comm, [1, 2, 3], bytearray(64), 0)

    with pytest.raises(SimProcessError) as ei:
        mpi_run(1, prog)
    assert isinstance(ei.value.original, MPIError)
