"""WL-LSMS topology: Fig. 1's module structure, Fig. 2's LIZ."""

import pytest

from repro.apps.wllsms import Topology


class TestLayout:
    def test_world_size(self):
        topo = Topology(n_lsms=2, group_size=16)
        assert topo.nprocs == 33  # Fig. 3's first x value

    def test_paper_x_axis(self):
        """M = 2..21 with N = 16 gives exactly 33..337 step 16."""
        sizes = [Topology(n_lsms=m, group_size=16).nprocs
                 for m in range(2, 22)]
        assert sizes == list(range(33, 338, 16))

    def test_one_wl_rank(self):
        topo = Topology(n_lsms=3, group_size=4)
        assert topo.is_wl(0)
        assert not any(topo.is_wl(r) for r in range(1, topo.nprocs))

    def test_privileged_ranks_one_per_group(self):
        topo = Topology(n_lsms=3, group_size=4)
        assert topo.privileged_ranks() == [1, 5, 9]
        for g in range(3):
            members = topo.members_of(g)
            assert len(members) == 4
            assert topo.is_privileged(members[0])
            assert not any(topo.is_privileged(r) for r in members[1:])

    def test_group_membership_partition(self):
        topo = Topology(n_lsms=4, group_size=5)
        seen = []
        for g in range(4):
            seen.extend(topo.members_of(g))
        assert sorted(seen) == list(range(1, topo.nprocs))

    def test_group_of_and_local_index(self):
        topo = Topology(n_lsms=2, group_size=3)
        assert topo.group_of(4) == 1
        assert topo.local_index(4) == 0
        assert topo.local_index(6) == 2

    def test_wl_rank_has_no_group(self):
        topo = Topology(n_lsms=2, group_size=3)
        with pytest.raises(ValueError):
            topo.group_of(0)

    def test_atom_ownership_round_robin(self):
        topo = Topology(n_lsms=1, group_size=4)
        assert [topo.owner_of_atom(0, i) for i in range(4)] == [1, 2, 3, 4]

    def test_for_nprocs(self):
        topo = Topology.for_nprocs(49, group_size=16)
        assert topo.n_lsms == 3
        with pytest.raises(ValueError):
            Topology.for_nprocs(40, group_size=16)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Topology(n_lsms=0, group_size=4)
        with pytest.raises(ValueError):
            Topology(n_lsms=1, group_size=1)

    def test_rank_bounds_checked(self):
        topo = Topology(n_lsms=1, group_size=2)
        with pytest.raises(ValueError):
            topo.group_of(99)
        with pytest.raises(ValueError):
            topo.members_of(5)
