"""Statistical validation of the Wang-Landau sampler.

Wang-Landau estimates ln g(E) — the log density of states. For the toy
Heisenberg chain we can estimate g(E) directly by brute-force uniform
sampling of spin configurations; a correct WL implementation's ln g
must agree with the log of that histogram up to an additive constant.
"""

import numpy as np
import pytest
from scipy import stats

from repro.apps.wllsms.wanglandau import (
    WangLandau,
    heisenberg_energy,
    random_spins,
)

N_SPINS = 5
E_BOUND = float(N_SPINS - 1)
N_BINS = 10


def brute_force_ln_g(samples: int = 40_000,
                     seed: int = 11) -> tuple[np.ndarray, np.ndarray]:
    """Log histogram of energies under uniform configuration sampling."""
    rng = np.random.default_rng(seed)
    counts = np.zeros(N_BINS)
    edges = np.linspace(-E_BOUND, E_BOUND, N_BINS + 1)
    for _ in range(samples):
        e = heisenberg_energy(random_spins(rng, N_SPINS))
        b = min(int((e + E_BOUND) / (2 * E_BOUND) * N_BINS), N_BINS - 1)
        counts[b] += 1
    mask = counts > 0
    ln_g = np.zeros(N_BINS)
    ln_g[mask] = np.log(counts[mask])
    return ln_g, mask


def wang_landau_ln_g(steps: int = 60_000,
                     seed: int = 5) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    wl = WangLandau(e_min=-E_BOUND, e_max=E_BOUND, n_bins=N_BINS,
                    flatness=0.7)
    spins = random_spins(rng, N_SPINS)
    e = heisenberg_energy(spins)
    for _ in range(steps):
        cand = random_spins(rng, N_SPINS)
        e_new = heisenberg_energy(cand)
        if wl.accept(e, e_new, rng):
            spins, e = cand, e_new
        wl.record(e)
    ln_g = wl.normalized_ln_g()
    return ln_g, wl.ln_g > 0


@pytest.fixture(scope="module")
def estimates():
    bf, bf_mask = brute_force_ln_g()
    wl, wl_mask = wang_landau_ln_g()
    return bf, bf_mask, wl, wl_mask


class TestDensityOfStates:
    def test_same_support_discovered(self, estimates):
        """WL visits (at least) the energy bins brute force finds."""
        bf, bf_mask, wl, wl_mask = estimates
        # Ignore the extreme bins, which brute force barely reaches.
        core = slice(1, N_BINS - 1)
        assert (wl_mask[core] >= bf_mask[core]).all()

    def test_ln_g_strongly_correlated(self, estimates):
        """Pearson correlation of the two ln g estimates (common
        support) must be high — same shape up to a constant."""
        bf, bf_mask, wl, wl_mask = estimates
        common = bf_mask & wl_mask
        assert common.sum() >= 5
        r, _ = stats.pearsonr(bf[common], wl[common])
        assert r > 0.9, f"ln g shapes disagree (r={r:.3f})"

    def test_monotone_rank_agreement(self, estimates):
        bf, bf_mask, wl, wl_mask = estimates
        common = bf_mask & wl_mask
        rho, _ = stats.spearmanr(bf[common], wl[common])
        assert rho > 0.85

    def test_wl_refined_at_least_once(self):
        _, mask = wang_landau_ln_g(steps=60_000)
        assert mask.sum() >= 5
