"""Full WL-LSMS runs: physics equivalence and phase timing behaviour."""

import numpy as np
import pytest

from repro.apps.wllsms import AppConfig, run_app
from repro.netmodel import gemini_model

SMALL = dict(n_lsms=2, group_size=4, t=24, tc=4, wl_steps=3)


class TestConfig:
    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            AppConfig(variant="fastest")

    def test_target_requires_directive(self):
        with pytest.raises(ValueError):
            AppConfig(variant="original", target="TARGET_COMM_SHMEM")

    def test_overlap_requires_directive(self):
        with pytest.raises(ValueError):
            AppConfig(variant="original", overlap=True)

    def test_nprocs(self):
        assert AppConfig(**SMALL).nprocs == 9


class TestRuns:
    @pytest.mark.parametrize("variant,target", [
        ("original", "TARGET_COMM_MPI_2SIDE"),
        ("waitall", "TARGET_COMM_MPI_2SIDE"),
        ("directive", "TARGET_COMM_MPI_2SIDE"),
        ("directive", "TARGET_COMM_SHMEM"),
    ])
    def test_all_variants_run_and_sample(self, variant, target):
        res = run_app(AppConfig(variant=variant, target=target, **SMALL))
        assert res.wang_landau.steps == SMALL["wl_steps"] * 2  # per group
        assert all(np.isfinite(e) for e in res.group_energies)
        assert res.makespan > 0

    def test_physics_identical_across_variants(self):
        """The communication variant must not change the numbers."""
        results = [
            run_app(AppConfig(variant=v, target=t, **SMALL))
            for v, t in [
                ("original", "TARGET_COMM_MPI_2SIDE"),
                ("waitall", "TARGET_COMM_MPI_2SIDE"),
                ("directive", "TARGET_COMM_MPI_2SIDE"),
                ("directive", "TARGET_COMM_SHMEM"),
            ]
        ]
        base = results[0]
        for other in results[1:]:
            assert other.group_energies == pytest.approx(
                base.group_energies)
            assert np.allclose(other.wang_landau.ln_g,
                               base.wang_landau.ln_g)

    def test_deterministic_reruns(self):
        a = run_app(AppConfig(**SMALL))
        b = run_app(AppConfig(**SMALL))
        assert a.group_energies == b.group_energies
        assert a.makespan == b.makespan

    def test_phase_records_present(self):
        res = run_app(AppConfig(**SMALL))
        for phase in ("distribute", "setevec", "corestates", "collect"):
            assert res.phases.episodes(phase) > 0
        assert res.phases.episodes("setevec") == SMALL["wl_steps"]

    def test_seed_changes_energies(self):
        a = run_app(AppConfig(**SMALL))
        b = run_app(AppConfig(seed=99, **SMALL))
        assert a.group_energies != pytest.approx(b.group_energies)

    def test_collective_intent_directive_same_physics(self):
        """The Section-V comm_collective path matches the hand-written
        reduction exactly."""
        a = run_app(AppConfig(**SMALL))
        b = run_app(AppConfig(collective_intent=True, **SMALL))
        assert b.group_energies == pytest.approx(a.group_energies)
        assert np.allclose(b.wang_landau.ln_g, a.wang_landau.ln_g)


class TestTimingShape:
    def test_setevec_variant_ordering_in_app(self):
        """Per-rank busy time at the privileged (bottleneck) rank — the
        paper's per-routine timer view."""
        model_kw = dict(model=gemini_model(), n_lsms=1, group_size=16,
                        t=24, tc=4, wl_steps=2)
        priv = AppConfig(**model_kw).topology.privileged_rank_of(0)
        t_orig = run_app(AppConfig(variant="original", **model_kw)) \
            .phases.rank_total("setevec", priv)
        t_wall = run_app(AppConfig(variant="waitall", **model_kw)) \
            .phases.rank_total("setevec", priv)
        t_dir = run_app(AppConfig(variant="directive", **model_kw)) \
            .phases.rank_total("setevec", priv)
        t_shm = run_app(AppConfig(
            variant="directive", target="TARGET_COMM_SHMEM",
            **model_kw)).phases.rank_total("setevec", priv)
        assert t_orig > t_wall > t_dir > t_shm

    def test_distribute_grows_with_instances(self):
        base = dict(group_size=4, t=64, tc=4, wl_steps=1,
                    model=gemini_model())
        t2 = run_app(AppConfig(n_lsms=2, **base)) \
            .phases.total_duration("distribute")
        t6 = run_app(AppConfig(n_lsms=6, **base)) \
            .phases.total_duration("distribute")
        assert t6 > 2.0 * t2

    @staticmethod
    def _exec_time(res, rank):
        return (res.phases.rank_total("setevec", rank)
                + res.phases.rank_total("corestates", rank))

    def test_overlap_reduces_setevec_plus_corestates(self):
        """Fig. 5: overlapping hides communication under compute."""
        kw = dict(model=gemini_model(), n_lsms=1, group_size=16,
                  t=24, tc=4, wl_steps=2, gpu_speedup=10.0)
        plain = run_app(AppConfig(variant="directive", **kw))
        over = run_app(AppConfig(variant="directive", overlap=True,
                                 **kw))
        last = AppConfig(**kw).topology.members_of(0)[-1]
        assert self._exec_time(over, last) < self._exec_time(plain, last)
        # The physics is unchanged by overlapping.
        assert over.group_energies == pytest.approx(plain.group_energies)

    def test_overlap_benefit_bounded_by_comm_time(self):
        kw = dict(model=gemini_model(), n_lsms=1, group_size=16,
                  t=24, tc=4, wl_steps=2, gpu_speedup=10.0)
        plain = run_app(AppConfig(variant="directive", **kw))
        over = run_app(AppConfig(variant="directive", overlap=True,
                                 **kw))
        last = AppConfig(**kw).topology.members_of(0)[-1]
        benefit = (self._exec_time(plain, last)
                   - self._exec_time(over, last))
        comm = plain.phases.rank_total("setevec", last)
        assert benefit <= comm * 1.05
