"""Atom payloads and the Wang-Landau sampler."""

import numpy as np
import pytest

from repro.apps.wllsms.atom import ATOM_SCALARS, AtomData, make_atoms
from repro.apps.wllsms.wanglandau import (
    WangLandau,
    heisenberg_energy,
    random_spins,
)


class TestAtomScalars:
    def test_field_order_matches_listing4(self):
        names = [f.name for f in ATOM_SCALARS.fields]
        assert names == [
            "local_id", "jmt", "jws", "xstart", "rmt", "header",
            "alat", "efermi", "vdif", "ztotss", "zcorss", "evec",
            "nspin", "numc",
        ]

    def test_header_is_80_chars(self):
        header = next(f for f in ATOM_SCALARS.fields
                      if f.name == "header")
        assert header.count == 80

    def test_composite_flattens_to_struct_triples(self):
        t = ATOM_SCALARS.triples()
        assert len(t) == 14
        assert t.blocklengths[5] == 80   # header
        assert t.blocklengths[11] == 3   # evec


class TestAtomData:
    def test_make_atoms_deterministic(self):
        a = make_atoms(7, 4, t=32, tc=4)
        b = make_atoms(7, 4, t=32, tc=4)
        assert all(x.equals(y) for x, y in zip(a, b))

    def test_make_atoms_distinct_ids(self):
        atoms = make_atoms(7, 3, t=16, tc=2)
        assert [int(a.scalars["local_id"][0]) for a in atoms] == [0, 1, 2]

    def test_payload_bytes(self):
        atom = AtomData.empty(t=100, tc=8)
        expected = (ATOM_SCALARS.size + 2 * 100 * 2 * 8
                    + 8 * 2 * 8 + 3 * 8 * 2 * 4)
        assert atom.payload_bytes == expected

    def test_resize_potential_grows_only(self):
        atom = AtomData.empty(t=10, tc=2)
        atom.resize_potential(20)
        assert atom.vr.shape == (20, 2)
        atom.resize_potential(5)
        assert atom.vr.shape == (20, 2)

    def test_resize_core(self):
        atom = AtomData.empty(t=10, tc=2)
        atom.resize_core(6)
        assert atom.nc.shape == (6, 2)

    def test_evec_is_unit_vector(self):
        atom = make_atoms(3, 1, t=8, tc=2)[0]
        evec = atom.scalars["evec"][0]
        assert np.linalg.norm(evec) == pytest.approx(1.0)


class TestWangLandau:
    def test_bins_cover_range(self):
        wl = WangLandau(e_min=-10, e_max=10, n_bins=4)
        assert wl.bin_of(-10) == 0
        assert wl.bin_of(9.99) == 3
        assert wl.bin_of(-100) == 0     # clamped
        assert wl.bin_of(100) == 3

    def test_record_updates_g_and_histogram(self):
        wl = WangLandau(e_min=0, e_max=1, n_bins=2)
        wl.record(0.1)
        assert wl.ln_g[0] == pytest.approx(1.0)
        assert wl.histogram[0] == 1

    def test_acceptance_favours_less_visited_bins(self):
        wl = WangLandau(e_min=0, e_max=1, n_bins=2)
        wl.ln_g[0] = 50.0  # bin 0 heavily visited
        rng = np.random.default_rng(0)
        # Moves out of bin 0 into bin 1 always accepted.
        assert wl.accept(0.1, 0.9, rng)
        # Moves into the crowded bin essentially never accepted.
        accepts = sum(wl.accept(0.9, 0.1, rng) for _ in range(200))
        assert accepts == 0

    def test_refine_halves_f_and_resets_histogram(self):
        wl = WangLandau(e_min=0, e_max=1, n_bins=2)
        wl.record(0.1)
        wl.refine()
        assert wl.ln_f == pytest.approx(0.5)
        assert wl.histogram.sum() == 0
        assert wl.refinements == 1

    def test_flatness_detection(self):
        wl = WangLandau(e_min=0, e_max=1, n_bins=2, flatness=0.8)
        wl.histogram[:] = [10, 10]
        assert wl.is_flat()
        wl.histogram[:] = [10, 1]
        assert not wl.is_flat()

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            WangLandau(e_min=1, e_max=0)
        with pytest.raises(ValueError):
            WangLandau(e_min=0, e_max=1, n_bins=1)

    def test_converges_on_toy_model(self):
        """A short real WL run visits multiple bins and refines."""
        rng = np.random.default_rng(42)
        n_spins = 6
        wl = WangLandau(e_min=-(n_spins - 1), e_max=(n_spins - 1),
                        n_bins=8, flatness=0.6)
        spins = random_spins(rng, n_spins)
        e = heisenberg_energy(spins)
        for _ in range(4000):
            cand = random_spins(rng, n_spins)
            e_new = heisenberg_energy(cand)
            if wl.accept(e, e_new, rng):
                spins, e = cand, e_new
            wl.record(e)
        assert wl.refinements >= 1
        assert (wl.normalized_ln_g() > 0).sum() >= 3


class TestHelpers:
    def test_random_spins_are_unit(self):
        rng = np.random.default_rng(1)
        v = random_spins(rng, 10).reshape(10, 3)
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0)

    def test_heisenberg_bounds(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            e = heisenberg_energy(random_spins(rng, 5))
            assert -4.0 <= e <= 4.0

    def test_heisenberg_aligned_chain(self):
        spins = np.tile([0.0, 0.0, 1.0], 4)
        assert heisenberg_energy(spins) == pytest.approx(-3.0)
