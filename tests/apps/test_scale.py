"""Paper-scale smoke runs: the Fig. 3 x-axis sizes actually execute."""

import numpy as np
import pytest

from repro.apps.wllsms import AppConfig, Topology, run_app
from repro.netmodel import gemini_model


class TestScale:
    def test_p129_full_app(self):
        """A mid-sweep point (8 LSMS x 16 + 1 = 129 ranks), end to end."""
        topo = Topology.for_nprocs(129, 16)
        res = run_app(AppConfig(
            n_lsms=topo.n_lsms, group_size=16, t=64, tc=4, wl_steps=2,
            variant="directive", model=gemini_model()))
        assert res.wang_landau.steps == 2 * topo.n_lsms
        assert all(np.isfinite(e) for e in res.group_energies)
        # Every group produced a distinct spin configuration...
        assert len(set(round(e, 6) for e in res.group_energies)) > 1
        # ...and the makespan is dominated by compute (19:1 ratio).
        assert res.makespan > 0

    def test_message_counts_scale_linearly(self):
        """Total setEvec messages = steps * M * (N-1)."""
        counts = {}
        for m in (2, 4):
            res = run_app(AppConfig(
                n_lsms=m, group_size=8, t=16, tc=2, wl_steps=2,
                variant="directive", model=gemini_model(), trace=True))
            dir_msgs = sum(
                1 for e in res.trace
                if e.kind == "mpi.send_post" and e.fields.get("tag", -1)
                is not None and e.fields.get("nbytes") == 24)
            counts[m] = dir_msgs
        assert counts[4] == 2 * counts[2]

    def test_timing_deterministic_at_scale(self):
        cfg = AppConfig(n_lsms=4, group_size=16, t=32, tc=4, wl_steps=1,
                        variant="waitall", model=gemini_model())
        a = run_app(cfg)
        b = run_app(cfg)
        assert a.makespan == b.makespan
        assert (a.phases.total_duration("setevec")
                == b.phases.total_duration("setevec"))
