"""setEvec: Listing 6 vs ablation vs Listing 7, data and timing."""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.apps.wllsms.liz import Topology
from repro.apps.wllsms.setevec import (
    set_evec_directive,
    set_evec_original,
    set_evec_waitall,
)
from repro.core.buffers import array_of
from repro.netmodel import gemini_model, zero_model
from repro.sim import Engine

TOPO = Topology(n_lsms=2, group_size=4)


def run_setevec(variant, target="TARGET_COMM_MPI_2SIDE", model=None,
                overlap_body=None, topo=TOPO):
    model = model or zero_model()
    eng = Engine(topo.nprocs)

    def main(env):
        mpi.init(env, model)
        if topo.is_wl(env.rank):
            return None
        g = topo.group_of(env.rank)
        num = topo.atoms_per_group()
        ev = None
        if topo.is_privileged(env.rank):
            # Deterministic per-group spin payload.
            ev = np.arange(3.0 * num) + 100.0 * g
        if target == "TARGET_COMM_SHMEM":
            sh = shmem.init(env)
            my_evec = sh.malloc(3, np.float64)
        else:
            my_evec = np.zeros(3)
        t0 = env.now
        if variant == "original":
            set_evec_original(env, topo, ev, my_evec)
        elif variant == "waitall":
            set_evec_waitall(env, topo, ev, my_evec)
        else:
            set_evec_directive(env, topo, ev, my_evec, target=target,
                               overlap_body=overlap_body)
        return (array_of(my_evec).tolist(), env.now - t0)

    # SHMEM needs every rank (incl. WL) in the collective malloc.
    if target == "TARGET_COMM_SHMEM":
        def wrapped(env):
            mpi.init(env, model)
            if topo.is_wl(env.rank):
                shmem.init(env).malloc(3, np.float64)
                return None
            return main_inner(env)

        def main_inner(env):
            g = topo.group_of(env.rank)
            num = topo.atoms_per_group()
            ev = None
            if topo.is_privileged(env.rank):
                ev = np.arange(3.0 * num) + 100.0 * g
            sh = shmem.init(env)
            my_evec = sh.malloc(3, np.float64)
            t0 = env.now
            set_evec_directive(env, topo, ev, my_evec, target=target,
                               overlap_body=overlap_body)
            return (array_of(my_evec).tolist(), env.now - t0)

        return eng.run(wrapped), eng
    return eng.run(main), eng


def expected_evec(topo, rank):
    g = topo.group_of(rank)
    p = topo.local_index(rank)
    return [3.0 * p + k + 100.0 * g for k in range(3)]


@pytest.mark.parametrize("variant,target", [
    ("original", "TARGET_COMM_MPI_2SIDE"),
    ("waitall", "TARGET_COMM_MPI_2SIDE"),
    ("directive", "TARGET_COMM_MPI_2SIDE"),
    ("directive", "TARGET_COMM_MPI_1SIDE"),
    ("directive", "TARGET_COMM_SHMEM"),
])
def test_every_member_gets_its_spin(variant, target):
    res, _ = run_setevec(variant, target)
    for rank in range(1, TOPO.nprocs):
        got = res.values[rank][0]
        assert got == expected_evec(TOPO, rank), \
            f"rank {rank} under {variant}/{target}"


class TestSyncStructure:
    def test_original_uses_wait_loop(self):
        _, eng = run_setevec("original")
        assert eng.stats.sync_calls["wait"] > 0
        assert eng.stats.sync_calls["waitall"] == 0

    def test_ablation_uses_waitall(self):
        _, eng = run_setevec("waitall")
        assert eng.stats.sync_calls["wait"] == 0
        assert eng.stats.sync_calls["waitall"] > 0

    def test_directive_consolidates_one_waitall_per_rank(self):
        _, eng = run_setevec("directive")
        # Each participating rank issues exactly one Waitall.
        participating = TOPO.n_lsms * TOPO.group_size
        assert eng.stats.sync_calls["waitall"] == participating

    def test_shmem_directive_uses_puts_and_quiet(self):
        _, eng = run_setevec("directive", "TARGET_COMM_SHMEM")
        n_msgs = TOPO.n_lsms * (TOPO.group_size - 1)
        assert eng.stats.messages["shmem"] == n_msgs
        assert eng.stats.messages["mpi2s"] == 0
        assert eng.stats.sync_calls["quiet"] == TOPO.n_lsms  # senders


class TestFigure4Ordering:
    """Under the calibrated model the paper's ordering must hold at
    the privileged (bottleneck) rank."""

    @pytest.fixture(scope="class")
    def times(self):
        model = gemini_model()
        topo = Topology(n_lsms=1, group_size=16)
        out = {}
        for variant, target in [
            ("original", "TARGET_COMM_MPI_2SIDE"),
            ("waitall", "TARGET_COMM_MPI_2SIDE"),
            ("directive", "TARGET_COMM_MPI_2SIDE"),
            ("directive", "TARGET_COMM_SHMEM"),
        ]:
            res, _ = run_setevec(variant, target, model=model, topo=topo)
            priv = topo.privileged_rank_of(0)
            out[(variant, target)] = res.values[priv][1]
        return out

    def test_strict_ordering(self, times):
        orig = times[("original", "TARGET_COMM_MPI_2SIDE")]
        wall = times[("waitall", "TARGET_COMM_MPI_2SIDE")]
        dmpi = times[("directive", "TARGET_COMM_MPI_2SIDE")]
        dshm = times[("directive", "TARGET_COMM_SHMEM")]
        assert orig > wall > dmpi > dshm

    def test_paper_ratio_bands(self, times):
        orig = times[("original", "TARGET_COMM_MPI_2SIDE")]
        wall = times[("waitall", "TARGET_COMM_MPI_2SIDE")]
        dmpi = times[("directive", "TARGET_COMM_MPI_2SIDE")]
        dshm = times[("directive", "TARGET_COMM_SHMEM")]
        assert orig / wall == pytest.approx(2.6, rel=0.35)
        assert orig / dmpi == pytest.approx(4.0, rel=0.4)
        assert orig / dshm == pytest.approx(38.0, rel=0.5)


class TestOverlapBody:
    def test_body_called_once_per_instance(self):
        calls = []

        def body(env, p):
            calls.append((env.rank, p))

        res, _ = run_setevec("directive", overlap_body=body)
        # Receivers run the body once per instance; the privileged
        # sender once, after posting (so sends are not delayed).
        per_group = (TOPO.group_size - 1) ** 2 + 1
        assert len(calls) == per_group * TOPO.n_lsms
