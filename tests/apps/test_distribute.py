"""Single-atom-data distribution: all variants deliver identical data."""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.apps.wllsms.atom import AtomData, make_atoms
from repro.apps.wllsms.distribute import (
    atom_packed_size,
    distribute_directive,
    distribute_original,
    pack_atom,
    stage_a_recv_deck,
    stage_a_send_decks,
    unpack_atom,
)
from repro.apps.wllsms.liz import Topology
from repro.core.buffers import array_of
from repro.netmodel import zero_model
from repro.sim import Engine

T, TC = 24, 4


def run_distribution(variant, target="TARGET_COMM_MPI_2SIDE",
                     n_lsms=2, group_size=3, model=None):
    topo = Topology(n_lsms=n_lsms, group_size=group_size)
    model = model or zero_model()
    eng = Engine(topo.nprocs)

    def main(env):
        comm = mpi.init(env, model)
        if variant == "directive" and target == "TARGET_COMM_SHMEM":
            sh = shmem.init(env)
            from repro.apps.wllsms.app import _symmetric_atom
            my_atom = _symmetric_atom(sh, T, TC)
        else:
            my_atom = AtomData.empty(T, TC)
        deck = None
        if topo.is_wl(env.rank):
            atoms = make_atoms(5, topo.atoms_per_group(), t=T, tc=TC)
            stage_a_send_decks(comm, topo, atoms)
            return None
        if topo.is_privileged(env.rank):
            deck = stage_a_recv_deck(comm, topo, T, TC)
        if variant == "directive":
            distribute_directive(env, topo, deck, my_atom, target=target)
        else:
            distribute_original(comm, topo, env, deck, my_atom)
        return {
            "local_id": int(array_of(my_atom.scalars)["local_id"][0]),
            "vr0": float(array_of(my_atom.vr)[0, 0]),
            "kc_sum": int(array_of(my_atom.kc).sum()),
            "header": bytes(array_of(my_atom.scalars)["header"][0][:7]),
        }

    res = eng.run(main)
    return topo, res


def expected_for(topo, rank):
    atoms = make_atoms(5, topo.atoms_per_group(), t=T, tc=TC)
    idx = topo.local_index(rank)
    a = atoms[idx]
    return {
        "local_id": int(a.scalars["local_id"][0]),
        "vr0": float(a.vr[0, 0]),
        "kc_sum": int(a.kc.sum()),
        "header": bytes(a.scalars["header"][0][:7]),
    }


class TestPackUnpack:
    def test_roundtrip(self):
        model = zero_model()
        eng = Engine(1)

        def main(env):
            comm = mpi.init(env, model)
            src = make_atoms(3, 1, t=T, tc=TC)[0]
            buf = bytearray(atom_packed_size(T, TC))
            size = pack_atom(comm, src, buf)
            dst = AtomData.empty(T, TC)
            unpack_atom(comm, bytes(buf[:size]), dst)
            return src.equals(dst)

        assert eng.run(main).values[0]

    def test_packed_size_bound_holds(self):
        model = zero_model()
        eng = Engine(1)

        def main(env):
            comm = mpi.init(env, model)
            src = make_atoms(3, 1, t=T, tc=TC)[0]
            buf = bytearray(atom_packed_size(T, TC))
            return pack_atom(comm, src, buf)

        size = eng.run(main).values[0]
        assert size <= atom_packed_size(T, TC)

    def test_unpack_resizes_smaller_destination(self):
        """Listing 4's resizePotential path: receiver declared less
        radial rows than the sender shipped."""
        model = zero_model()
        eng = Engine(1)

        def main(env):
            comm = mpi.init(env, model)
            src = make_atoms(3, 1, t=T, tc=TC)[0]
            buf = bytearray(atom_packed_size(T, TC))
            size = pack_atom(comm, src, buf)
            dst = AtomData.empty(T // 2, TC)  # too small: must grow
            unpack_atom(comm, bytes(buf[:size]), dst)
            return (dst.vr.shape[0] >= T,
                    np.array_equal(dst.vr[:T], src.vr))

        grew, equal = eng.run(main).values[0]
        assert grew and equal


@pytest.mark.parametrize("variant,target", [
    ("original", "TARGET_COMM_MPI_2SIDE"),
    ("directive", "TARGET_COMM_MPI_2SIDE"),
    ("directive", "TARGET_COMM_MPI_1SIDE"),
    ("directive", "TARGET_COMM_SHMEM"),
])
class TestVariantsDeliver:
    def test_every_rank_gets_its_atom(self, variant, target):
        topo, res = run_distribution(variant, target)
        for rank in range(1, topo.nprocs):
            assert res.values[rank] == expected_for(topo, rank), \
                f"rank {rank} mismatch under {variant}/{target}"


class TestVariantEquivalence:
    def test_original_and_directive_identical_data(self):
        _, res_orig = run_distribution("original")
        _, res_dir = run_distribution("directive")
        assert res_orig.values[1:] == res_dir.values[1:]
