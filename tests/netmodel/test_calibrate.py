"""Calibration fitting reproduces the paper's ratios."""

import pytest

from repro.netmodel import gemini_model
from repro.netmodel.calibrate import (
    CalibrationTargets,
    FittedCosts,
    fit_costs,
    verify_fit,
)


class TestFit:
    def test_fit_hits_paper_targets(self):
        targets = CalibrationTargets()  # 2.6x / 4x / 38x
        fitted = fit_costs(targets)
        assert verify_fit(fitted, targets, rel_tol=0.05) == []
        got = fitted.speedups()
        assert got["ablation"] == pytest.approx(2.6, rel=0.05)
        assert got["directive_mpi"] == pytest.approx(4.0, rel=0.05)
        assert got["directive_shmem"] == pytest.approx(38.0, rel=0.05)

    def test_fitted_costs_positive_and_ordered(self):
        fitted = fit_costs(CalibrationTargets())
        assert fitted.wait_overhead > fitted.waitall_per_req > 0
        assert fitted.shmem_o_send < fitted.o_send

    def test_other_targets_fittable(self):
        targets = CalibrationTargets(ablation_speedup=2.0,
                                     mpi_speedup=3.0,
                                     shmem_speedup=10.0)
        fitted = fit_costs(targets)
        assert verify_fit(fitted, targets, rel_tol=0.05) == []

    def test_invalid_o_send_rejected(self):
        with pytest.raises(ValueError):
            fit_costs(CalibrationTargets(), o_send=0.0)


class TestGeminiConsistency:
    def test_hand_calibration_close_to_fit(self):
        """The shipped gemini model agrees with the automated fit on
        the two MPI ratios; the SHMEM ratio intentionally sits below
        the raw fit (the quiet/notify costs the closed form omits)."""
        m = gemini_model()
        hand = FittedCosts(
            o_send=m.transport("mpi2s").o_send,
            request_alloc=m.request_alloc_overhead,
            wait_overhead=m.wait_overhead,
            waitall_per_req=m.waitall_per_req,
            shmem_o_send=m.transport("shmem").o_send,
        )
        got = hand.speedups()
        assert got["ablation"] == pytest.approx(2.6, rel=0.12)
        assert got["directive_mpi"] == pytest.approx(4.0, rel=0.12)
        assert 30.0 <= got["directive_shmem"] <= 50.0

    def test_verify_fit_reports_issues(self):
        bad = FittedCosts(1e-6, 1e-6, 1e-6, 1e-6, 1e-6)
        issues = verify_fit(bad, CalibrationTargets())
        assert issues  # 3x/1.5x/3x are far from 2.6/4/38
        assert any("directive_shmem" in i for i in issues)
