"""NetModelError: unknown transports fail as repro errors, not as a
bare dict KeyError."""

import pytest

from repro.errors import NetModelError, ReproError
from repro.netmodel import gemini_model


class TestUnknownTransport:
    def test_raises_netmodel_error(self):
        with pytest.raises(NetModelError) as ei:
            gemini_model().transport("bogus")
        msg = str(ei.value)
        assert "bogus" in msg
        assert "available" in msg  # lists what the model does provide

    def test_is_both_repro_error_and_keyerror(self):
        """New code can catch ReproError; old call sites written around
        the mapping-lookup contract keep working."""
        with pytest.raises(ReproError):
            gemini_model().transport("bogus")
        with pytest.raises(KeyError):
            gemini_model().transport("bogus")

    def test_str_is_not_keyerror_repr(self):
        """KeyError.__str__ would repr() the message into quoted
        noise; NetModelError must read like an exception message."""
        err = NetModelError("no transport 'x'")
        assert str(err) == "no transport 'x'"
