"""Unit tests for the network cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.netmodel import (
    LogGPParams,
    MachineModel,
    PiecewiseTable,
    TransportParams,
    from_hockney,
    from_loggp,
    gemini_model,
    uniform_model,
    zero_model,
)
from repro.netmodel.base import MPI_1SIDED, MPI_2SIDED, SHMEM
from repro.util.units import usec


class TestPiecewiseTable:
    def test_interpolates(self):
        t = PiecewiseTable([(0, 0.0), (10, 10.0)])
        assert t(5) == pytest.approx(5.0)

    def test_clamps_ends(self):
        t = PiecewiseTable([(8, 1.0), (256, 2.0)])
        assert t(0) == 1.0
        assert t(1_000_000) == 2.0

    def test_exact_points(self):
        t = PiecewiseTable([(1, 10.0), (2, 20.0), (4, 15.0)])
        assert t(1) == 10.0
        assert t(2) == 20.0
        assert t(4) == 15.0

    def test_single_point(self):
        t = PiecewiseTable([(8, 3.0)])
        assert t(0) == t(8) == t(99) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseTable([])

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseTable([(1, 1.0), (1, 2.0)])

    @given(st.floats(min_value=0, max_value=1e6))
    def test_within_envelope(self, x):
        t = PiecewiseTable([(0, 1.0), (100, 5.0), (1000, 2.0)])
        assert 1.0 <= t(x) <= 5.0


class TestTransportParams:
    def test_wire_time_is_alpha_plus_size_over_bw(self):
        tp = TransportParams(name="t", alpha=1e-6, bandwidth=1e9)
        assert tp.wire_time(1000) == pytest.approx(2e-6)

    def test_latency_table_overrides_alpha(self):
        tp = TransportParams(
            name="t", alpha=9.0, bandwidth=1e9,
            alpha_table=PiecewiseTable([(8, 1e-6), (256, 2e-6)]))
        assert tp.latency(8) == pytest.approx(1e-6)
        assert tp.latency(256) == pytest.approx(2e-6)

    def test_eager_boundary_inclusive(self):
        tp = TransportParams(name="t", alpha=0, bandwidth=1e9,
                             eager_threshold=100)
        assert tp.is_eager(100)
        assert not tp.is_eager(101)

    def test_send_overhead_scales_with_bytes(self):
        tp = TransportParams(name="t", alpha=0, bandwidth=1e9,
                             o_send=1e-6, o_send_per_byte=1e-9)
        assert tp.send_overhead(1000) == pytest.approx(2e-6)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            TransportParams(name="t", alpha=0, bandwidth=0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            TransportParams(name="t", alpha=-1.0, bandwidth=1e9)


class TestMachineModel:
    def test_transport_lookup(self):
        m = uniform_model()
        assert m.transport(MPI_2SIDED).name == MPI_2SIDED

    def test_unknown_transport_raises_with_choices(self):
        m = uniform_model()
        with pytest.raises(KeyError, match="mpi2s"):
            m.transport("nope")

    def test_barrier_cost_log_scaling(self):
        m = uniform_model()  # 1 us per stage
        assert m.barrier_cost(1) == 0.0
        assert m.barrier_cost(2) == pytest.approx(1 * usec)
        assert m.barrier_cost(16) == pytest.approx(4 * usec)
        assert m.barrier_cost(17) == pytest.approx(5 * usec)

    def test_waitall_cost_linear(self):
        m = uniform_model()
        assert m.waitall_cost(10) == pytest.approx(1 * usec + 10 * 0.1 * usec)

    def test_struct_create_cost(self):
        m = uniform_model()
        # base 1us + 5 fields * 0.1us + commit 1us
        assert m.struct_create_cost(5) == pytest.approx(2.5 * usec)

    def test_empty_transports_rejected(self):
        with pytest.raises(ValueError):
            MachineModel(name="m", transports={})


class TestBuilders:
    def test_hockney_roundtrip(self):
        tp = from_hockney("h", alpha=2e-6, beta=1e-9)
        assert tp.latency(100) == pytest.approx(2e-6)
        assert tp.wire_time(1000) == pytest.approx(3e-6)
        assert tp.rendezvous_rtt == pytest.approx(4e-6)

    def test_hockney_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            from_hockney("h", alpha=0, beta=0)

    def test_loggp_maps_parameters(self):
        p = LogGPParams(L=1e-6, o=0.5e-6, g=0.8e-6, G=1e-9)
        tp = from_loggp("l", p)
        assert tp.alpha == pytest.approx(1e-6)
        assert tp.bandwidth == pytest.approx(1e9)
        assert tp.o_send == pytest.approx(0.8e-6)  # max(o, g)
        assert tp.o_recv == pytest.approx(0.5e-6)

    def test_loggp_rejects_negative(self):
        with pytest.raises(ValueError):
            LogGPParams(L=-1, o=0, g=0, G=1e-9)


class TestGeminiCalibration:
    """The published-ratio calibration of DESIGN.md must hold in the model."""

    def test_all_transports_present(self):
        m = gemini_model()
        for kind in (MPI_2SIDED, MPI_1SIDED, SHMEM):
            assert m.transport(kind).bandwidth > 0

    def test_shmem_latency_beats_mpi_for_small_messages(self):
        """Section IV-B: SHMEM wins most at 8-256 byte messages."""
        m = gemini_model()
        for size in (8, 24, 64, 256):
            assert (m.transport(SHMEM).latency(size)
                    < m.transport(MPI_2SIDED).latency(size))

    def test_figure4_ratio_calibration(self):
        """The per-message software path ratios that drive Figure 4."""
        from repro.netmodel.gemini import REQUEST_ALLOC_OVERHEAD
        m = gemini_model()
        o = m.transport(MPI_2SIDED).o_send
        original = o + REQUEST_ALLOC_OVERHEAD + m.wait_overhead
        ablation = o + REQUEST_ALLOC_OVERHEAD + m.waitall_per_req
        directive = o + m.waitall_per_req
        shmem = m.transport(SHMEM).o_send
        assert original / ablation == pytest.approx(2.6, rel=0.1)
        assert ablation / directive == pytest.approx(1.4, rel=0.1)
        assert original / shmem == pytest.approx(38.0, rel=0.15)

    def test_bandwidths_converge_for_large_messages(self):
        """Fig 3's 'comparable' result needs similar large-message rates."""
        m = gemini_model()
        times = [m.transport(k).wire_time(1 << 20)
                 for k in (MPI_2SIDED, MPI_1SIDED, SHMEM)]
        assert max(times) / min(times) < 1.1

    def test_zero_model_charges_nothing(self):
        m = zero_model()
        tp = m.transport(MPI_2SIDED)
        assert tp.wire_time(1 << 20) < 1e-9
        assert tp.send_overhead(1 << 20) == 0.0
        assert m.barrier_cost(1024) == 0.0

    def test_zero_model_never_rendezvous(self):
        m = zero_model()
        assert m.transport(MPI_2SIDED).is_eager(1 << 40)
