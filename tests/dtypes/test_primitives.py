"""Unit tests for the basic-type registry."""

import numpy as np
import pytest

from repro.dtypes import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    PRIMITIVES,
    from_numpy_dtype,
    primitive,
)
from repro.errors import DatatypeError


def test_registry_contains_c_core_types():
    for name in ("char", "short", "int", "long", "float", "double"):
        assert name in PRIMITIVES


def test_sizes_match_c_expectations():
    assert CHAR.size == 1
    assert INT.size == 4
    assert LONG.size == 8
    assert FLOAT.size == 4
    assert DOUBLE.size == 8


def test_mpi_names():
    assert INT.mpi_name == "MPI_INT"
    assert DOUBLE.mpi_name == "MPI_DOUBLE"
    assert CHAR.mpi_name == "MPI_CHAR"


def test_lookup_by_c_name_and_mpi_name():
    assert primitive("double") is DOUBLE
    assert primitive("MPI_DOUBLE") is DOUBLE


def test_lookup_unknown_raises():
    with pytest.raises(DatatypeError, match="unknown primitive"):
        primitive("quaternion")


def test_from_numpy_dtype_roundtrip():
    assert from_numpy_dtype(np.float64) is DOUBLE
    assert from_numpy_dtype(np.dtype("i4")) is INT
    assert from_numpy_dtype(np.int64).size == 8


def test_from_numpy_rejects_structured():
    dt = np.dtype([("a", "f8")])
    with pytest.raises(DatatypeError, match="composite"):
        from_numpy_dtype(dt)


def test_from_numpy_rejects_exotic():
    with pytest.raises(DatatypeError):
        from_numpy_dtype(np.dtype("U10"))


def test_alignment_equals_itemsize_for_scalars():
    assert DOUBLE.alignment == 8
    assert INT.alignment == 4
