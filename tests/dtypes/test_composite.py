"""Unit tests for composite-type layout and MPI-struct flattening."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dtypes import (
    CHAR,
    DOUBLE,
    INT,
    CompositeType,
    Field,
    extract_composite,
)
from repro.errors import CompositeTypeError


def simple_struct() -> CompositeType:
    # struct { int a; double b; char c[3]; }
    return CompositeType("S", [
        Field("a", INT),
        Field("b", DOUBLE),
        Field("c", CHAR, 3),
    ])


class TestLayout:
    def test_c_alignment_rules(self):
        s = simple_struct()
        # a at 0; b aligned to 8 -> 8; c at 16; pad to 24.
        assert s.field_displacements == (0, 8, 16)
        assert s.size == 24
        assert s.alignment == 8

    def test_no_padding_when_naturally_aligned(self):
        s = CompositeType("T", [Field("x", DOUBLE), Field("y", DOUBLE)])
        assert s.field_displacements == (0, 8)
        assert s.size == 16

    def test_tail_padding(self):
        # struct { double d; char c; } -> size 16, not 9.
        s = CompositeType("T", [Field("d", DOUBLE), Field("c", CHAR)])
        assert s.size == 16

    def test_matches_numpy_aligned_struct(self):
        """Our layout must agree with numpy's C-aligned struct layout."""
        s = simple_struct()
        np_dt = np.dtype([("a", "i4"), ("b", "f8"), ("c", "i1", (3,))],
                         align=True)
        assert s.size == np_dt.itemsize
        ours = s.to_numpy_dtype()
        for name in ("a", "b", "c"):
            assert ours.fields[name][1] == np_dt.fields[name][1]

    def test_displacement_of(self):
        s = simple_struct()
        assert s.displacement_of("b") == 8
        with pytest.raises(CompositeTypeError):
            s.displacement_of("zz")

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(CompositeTypeError, match="duplicate"):
            CompositeType("S", [Field("a", INT), Field("a", DOUBLE)])

    def test_empty_rejected(self):
        with pytest.raises(CompositeTypeError, match="no fields"):
            CompositeType("S", [])

    def test_bad_count_rejected(self):
        with pytest.raises(CompositeTypeError):
            Field("a", INT, 0)

    def test_bad_name_rejected(self):
        with pytest.raises(CompositeTypeError):
            Field("not a name", INT)


class TestTriples:
    def test_flat_struct_triples(self):
        s = simple_struct()
        t = s.triples()
        assert t.displacements == (0, 8, 16)
        assert t.blocklengths == (1, 1, 3)
        assert [p.mpi_name for p in t.mpi_types] == \
            ["MPI_INT", "MPI_DOUBLE", "MPI_CHAR"]

    def test_nested_struct_flattened(self):
        inner = CompositeType("Inner", [Field("x", DOUBLE), Field("y", INT)])
        outer = CompositeType("Outer", [
            Field("head", INT),
            Field("in1", inner),
            Field("tail", CHAR),
        ])
        t = outer.triples()
        # head at 0; inner at 8 (x at 8, y at 16); tail after inner.
        assert t.displacements[0] == 0
        assert t.displacements[1] == 8
        assert t.displacements[2] == 16
        assert [p.mpi_name for p in t.mpi_types] == \
            ["MPI_INT", "MPI_DOUBLE", "MPI_INT", "MPI_CHAR"]

    def test_nested_array_of_structs(self):
        inner = CompositeType("Inner", [Field("x", DOUBLE)])
        outer = CompositeType("Outer", [Field("pair", inner, 2)])
        t = outer.triples()
        assert t.displacements == (0, 8)
        assert t.blocklengths == (1, 1)

    def test_triples_iterate(self):
        s = simple_struct()
        rows = list(s.triples())
        assert rows[0] == (0, 1, INT)


class TestNumpyInterop:
    def test_zeros_roundtrip(self):
        s = simple_struct()
        arr = s.zeros(2)
        arr["a"] = [1, 2]
        arr["b"] = [1.5, 2.5]
        assert arr.dtype.itemsize == s.size
        assert arr[1]["b"] == 2.5

    def test_nested_numpy_dtype(self):
        inner = CompositeType("Inner", [Field("x", DOUBLE)])
        outer = CompositeType("Outer", [Field("n", INT), Field("i", inner)])
        arr = outer.zeros(1)
        arr["i"]["x"] = 3.0
        assert arr[0]["i"]["x"] == 3.0


class TestRecursionAndPointers:
    def test_recursive_pointer_field_rejected(self):
        # In C a recursive struct needs a pointer; the pointer rule fires.
        with pytest.raises(CompositeTypeError, match="prohibited"):
            extract_composite("Node", {"next": "Node*"})

    def test_self_named_nested_composite_rejected(self):
        # A composite embedding a composite of its own name is recursion.
        inner = CompositeType("A", [Field("x", INT)])
        with pytest.raises(CompositeTypeError, match="recursive"):
            extract_composite("A", {"f": inner})

    def test_indirect_recursion_rejected(self):
        a = CompositeType("A", [Field("x", INT)])
        b = CompositeType("B", [Field("a", a)])
        with pytest.raises(CompositeTypeError, match="recursive"):
            extract_composite("A", {"b": b})

    def test_pointer_field_rejected(self):
        with pytest.raises(CompositeTypeError, match="prohibited"):
            extract_composite("S", {"p": "double*"})

    def test_pointer_keyword_rejected(self):
        with pytest.raises(CompositeTypeError, match="prohibited"):
            extract_composite("S", {"p": "ptr"})


class TestExtract:
    def test_extract_from_mapping(self):
        s = extract_composite("Atom", {
            "jmt": "int",
            "xstart": "double",
            "header": ("char", 80),
            "evec": ("double", 3),
        })
        assert s.size > 0
        assert s.fields[2].count == 80
        t = s.triples()
        assert t.blocklengths == (1, 1, 80, 3)

    def test_extract_nested_mapping(self):
        s = extract_composite("Outer", {
            "n": "int",
            "inner": {"x": "double"},
        })
        assert isinstance(s.fields[1].type, CompositeType)
        assert len(s.triples()) == 2

    def test_extract_from_dataclass(self):
        import dataclasses

        @dataclasses.dataclass
        class Spin:
            sx: str = dataclasses.field(default="0", metadata={"ctype": "double"})
            sy: str = dataclasses.field(default="0", metadata={"ctype": "double"})
            n: str = dataclasses.field(default="0", metadata={"ctype": "int"})

        s = extract_composite("Spin", Spin)
        assert [f.name for f in s.fields] == ["sx", "sy", "n"]
        assert s.size == 24  # 8 + 8 + 4 -> padded to 24

    def test_extract_bad_spec_rejected(self):
        with pytest.raises(CompositeTypeError):
            extract_composite("S", {"x": 3.14})

    def test_extract_bad_array_spec_rejected(self):
        with pytest.raises(CompositeTypeError, match="array spec"):
            extract_composite("S", {"x": ("double", "not-an-int")})

    def test_extract_empty_rejected(self):
        with pytest.raises(CompositeTypeError):
            extract_composite("S", {})


# A hypothesis strategy for random (non-nested) struct definitions.
_prim_names = st.sampled_from(["char", "short", "int", "long", "float",
                               "double"])
_field = st.tuples(_prim_names, st.integers(min_value=1, max_value=16))
_struct_def = st.lists(_field, min_size=1, max_size=12)


@given(_struct_def)
def test_property_layout_agrees_with_numpy(fields):
    """For arbitrary structs, our C layout equals numpy's align=True."""
    definition = {f"f{i}": spec for i, spec in enumerate(fields)}
    s = extract_composite("P", definition)
    np_dt = np.dtype(
        [(f"f{i}", np.dtype(_np_name(t)), (c,)) for i, (t, c) in
         enumerate(fields)],
        align=True,
    )
    assert s.size == np_dt.itemsize
    for i in range(len(fields)):
        assert s.field_displacements[i] == np_dt.fields[f"f{i}"][1]


@given(_struct_def)
def test_property_triples_cover_struct_without_overlap(fields):
    """Flattened triples never overlap and stay inside the struct."""
    definition = {f"f{i}": spec for i, spec in enumerate(fields)}
    s = extract_composite("P", definition)
    spans = sorted(
        (d, d + b * t.size)
        for d, b, t in s.triples()
    )
    for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
        assert a1 <= b0  # no overlap
    assert spans[-1][1] <= s.size


def _np_name(c_name: str) -> str:
    return {
        "char": "i1", "short": "i2", "int": "i4", "long": "i8",
        "float": "f4", "double": "f8",
    }[c_name]
