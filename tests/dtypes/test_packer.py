"""Unit and property tests for contiguous pack/unpack."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.dtypes import pack_arrays, unpack_arrays, extract_composite
from repro.errors import DatatypeError


def test_roundtrip_single_array():
    src = np.arange(10, dtype=np.float64)
    dst = np.zeros(10, dtype=np.float64)
    unpack_arrays(pack_arrays([src]), [dst])
    assert np.array_equal(src, dst)


def test_roundtrip_mixed_dtypes():
    a = np.arange(5, dtype=np.int32)
    b = np.linspace(0, 1, 7)
    a2 = np.zeros(5, dtype=np.int32)
    b2 = np.zeros(7)
    unpack_arrays(pack_arrays([a, b]), [a2, b2])
    assert np.array_equal(a, a2)
    assert np.array_equal(b, b2)


def test_roundtrip_structured_dtype():
    s = extract_composite("S", {"n": "int", "x": ("double", 3)})
    src = s.zeros(4)
    src["n"] = np.arange(4)
    src["x"] = np.arange(12).reshape(4, 3)
    dst = s.zeros(4)
    unpack_arrays(pack_arrays([src]), [dst])
    assert np.array_equal(src, dst)


def test_roundtrip_2d_matrix():
    src = np.arange(12, dtype=np.float64).reshape(3, 4)
    dst = np.zeros((3, 4))
    unpack_arrays(pack_arrays([src]), [dst])
    assert np.array_equal(src, dst)


def test_noncontiguous_source_packed_correctly():
    base = np.arange(20, dtype=np.float64)
    src = base[::2]  # strided view
    dst = np.zeros(10)
    unpack_arrays(pack_arrays([src]), [dst])
    assert np.array_equal(dst, base[::2])


def test_size_mismatch_rejected():
    with pytest.raises(DatatypeError, match="mismatch"):
        unpack_arrays(b"\x00" * 8, [np.zeros(2)])


def test_empty_buffer_list_rejected():
    with pytest.raises(DatatypeError):
        pack_arrays([])
    with pytest.raises(DatatypeError):
        unpack_arrays(b"", [])


def test_non_array_rejected():
    with pytest.raises(DatatypeError):
        pack_arrays([[1, 2, 3]])


def test_noncontiguous_destination_rejected():
    base = np.zeros(20)
    with pytest.raises(DatatypeError, match="contiguous"):
        unpack_arrays(b"\x00" * 80, [base[::2]])


@given(st.lists(
    st.tuples(st.sampled_from(["i1", "i4", "i8", "f4", "f8"]),
              st.integers(min_value=1, max_value=32)),
    min_size=1, max_size=8,
))
def test_property_pack_unpack_roundtrip(shapes):
    rng = np.random.default_rng(0)
    srcs = []
    for dt, n in shapes:
        if dt.startswith("f"):
            srcs.append(rng.random(n).astype(dt))
        else:
            srcs.append(rng.integers(-100, 100, n).astype(dt))
    dsts = [np.zeros_like(s) for s in srcs]
    data = pack_arrays(srcs)
    assert len(data) == sum(s.nbytes for s in srcs)
    unpack_arrays(data, dsts)
    for s, d in zip(srcs, dsts):
        assert np.array_equal(s, d)
