"""The perf-regression comparator and its committed baselines."""

import json
import os
import sys

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(_ROOT, "benchmarks"))

import check_perf_regression as cpr  # noqa: E402


def _engine_report(makespan=1e-4, heap_ops=1000, nprocs=33):
    return {"points": [{"nprocs": nprocs, "makespan": makespan,
                        "heap_ops": heap_ops, "switches": 100}]}


class TestChecker:
    def test_identical_reports_pass(self):
        base = _engine_report()
        checker = cpr.Checker(0.25)
        cpr.check_engine(base, base, checker)
        assert not checker.failures
        assert checker.checked > 0

    def test_makespan_regression_fails(self):
        checker = cpr.Checker(0.25)
        cpr.check_engine(_engine_report(makespan=1e-4),
                         _engine_report(makespan=1.3e-4), checker)
        assert any("makespan" in f for f in checker.failures)

    def test_within_tolerance_passes(self):
        checker = cpr.Checker(0.25)
        cpr.check_engine(_engine_report(heap_ops=1000),
                         _engine_report(heap_ops=1200), checker)
        assert not checker.failures

    def test_quick_subset_is_accepted(self):
        base = {"points": [{"nprocs": p, "makespan": 1e-4,
                            "heap_ops": 10, "switches": 5}
                           for p in (33, 65, 128, 257, 337)]}
        new = {"points": base["points"][:3]}
        checker = cpr.Checker(0.25)
        cpr.check_engine(base, new, checker)
        assert not checker.failures

    def test_unknown_point_fails(self):
        checker = cpr.Checker(0.25)
        cpr.check_engine(_engine_report(nprocs=33),
                         _engine_report(nprocs=999), checker)
        assert checker.failures

    def test_advisor_saving_drop_fails(self):
        base = {"examples": [{"path": "a.c", "accepted": 1,
                              "predicted_saving_s": 1e-5,
                              "modeled_speedup": 1.5, "steps": []}],
                "catalog": [{"name": "ring", "changed": False}]}
        worse = json.loads(json.dumps(base))
        worse["examples"][0]["predicted_saving_s"] = 1e-6
        checker = cpr.Checker(0.25)
        cpr.check_advisor(base, worse, checker)
        assert any("predicted_saving_s" in f for f in checker.failures)

    def test_catalog_must_stay_negative_control(self):
        base = {"examples": [],
                "catalog": [{"name": "ring", "changed": False}]}
        worse = {"examples": [],
                 "catalog": [{"name": "ring", "changed": True}]}
        checker = cpr.Checker(0.25)
        cpr.check_advisor(base, worse, checker)
        assert any("catalog:ring" in f for f in checker.failures)

    def test_recovery_retry_count_is_exact_match(self):
        base = {"points": [{"drop_prob": 0.1, "makespan": 1e-4,
                            "overhead": 2.0, "retries": 3,
                            "restarts": 0}],
                "scenarios": []}
        worse = json.loads(json.dumps(base))
        worse["points"][0]["retries"] = 4
        checker = cpr.Checker(0.25)
        cpr.check_recovery(base, worse, checker)
        # counts are seed-deterministic: no tolerance band applies
        assert any("retries" in f for f in checker.failures)

    def test_recovery_scenario_regression_fails(self):
        base = {"points": [{"drop_prob": 0.0, "makespan": 1e-4,
                            "overhead": 1.0, "retries": 0,
                            "restarts": 0}],
                "scenarios": [{"name": "ring-iter/respawn",
                               "makespan": 1e-4, "recovery_wall_s": 1e-5,
                               "restarts": 1, "checkpoints": 12,
                               "failures_detected": 1, "restore_cut": 2,
                               "final_world": 5}]}
        checker = cpr.Checker(0.25)
        cpr.check_recovery(base, base, checker)
        assert not checker.failures
        worse = json.loads(json.dumps(base))
        worse["scenarios"][0]["makespan"] = 2e-4
        worse["scenarios"][0]["restore_cut"] = 0
        checker = cpr.Checker(0.25)
        cpr.check_recovery(base, worse, checker)
        assert any("makespan" in f for f in checker.failures)
        assert any("restore_cut" in f for f in checker.failures)

    def test_main_exit_codes(self, tmp_path):
        base = tmp_path / "base.json"
        new = tmp_path / "new.json"
        base.write_text(json.dumps(_engine_report()))
        new.write_text(json.dumps(_engine_report()))
        assert cpr.main(["--engine-baseline", str(base),
                         "--engine-new", str(new)]) == 0
        new.write_text(json.dumps(_engine_report(makespan=1.0)))
        assert cpr.main(["--engine-baseline", str(base),
                         "--engine-new", str(new)]) == 1


class TestCommittedBaselineReproducibility:
    def test_p33_point_matches_committed_engine_baseline(self):
        """An unmodified checkout reproduces the committed modeled
        values exactly — the property the CI perf-regression job rests
        on (wall-clock columns excluded, of course)."""
        import bench_engine_scaling as bes

        with open(os.path.join(_ROOT, "BENCH_engine.json")) as fh:
            baseline = {p["nprocs"]: p
                        for p in json.load(fh)["points"]}
        report = bes.run_scaling(process_counts=(33,), repeats=1)
        point = report["points"][0]
        base = baseline[33]
        assert point["makespan"] == base["makespan"]
        assert point["heap_ops"] == base["heap_ops"]
        assert point["switches"] == base["switches"]

    def test_recovery_report_matches_committed_baseline(self):
        """Every column of BENCH_recovery.json is modeled (virtual
        time) — a fresh run reproduces the committed file exactly."""
        import bench_recovery as br

        with open(os.path.join(_ROOT, "BENCH_recovery.json")) as fh:
            baseline = json.load(fh)
        assert br.run_bench() == baseline
