"""The figure-regeneration harness and its reporting."""

import pytest

from repro.bench.harness import (
    FigureSeries,
    figure4,
    paper_pcounts,
    productivity,
)
from repro.bench.report import mean_speedup, render_figure, render_speedups


class TestPaperPCounts:
    def test_full_sweep_matches_figure3_axis(self):
        ps = paper_pcounts()
        assert ps[0] == 33
        assert ps[-1] == 337
        assert len(ps) == 20
        assert all(b - a == 16 for a, b in zip(ps, ps[1:]))

    def test_quick_is_subset(self):
        assert set(paper_pcounts(quick=True)) <= set(paper_pcounts())


class TestFigureSeries:
    def test_add_and_ratio(self):
        fig = FigureSeries("f", "P", "t", xs=[1, 2])
        fig.add("a", [4.0, 8.0])
        fig.add("b", [2.0, 2.0])
        assert fig.ratio("a", "b") == [2.0, 4.0]

    def test_length_mismatch_rejected(self):
        fig = FigureSeries("f", "P", "t", xs=[1, 2])
        with pytest.raises(ValueError):
            fig.add("a", [1.0])

    def test_render_contains_all_series(self):
        fig = FigureSeries("Figure X", "P", "time", xs=[10, 20])
        fig.add("one", [1.0, 2.0])
        fig.add("two", [3.0, 4.0])
        out = render_figure(fig)
        assert "Figure X" in out
        assert "one" in out and "two" in out
        assert "10" in out and "20" in out

    def test_render_speedups(self):
        fig = FigureSeries("f", "P", "t", xs=[1])
        fig.add("base", [10.0])
        fig.add("fast", [2.0])
        out = render_speedups(fig, "base")
        assert "5" in out
        assert mean_speedup(fig, "base", "fast") == pytest.approx(5.0)


class TestProductivity:
    def test_structure(self):
        result = productivity()
        assert result["original_loc"] > 50  # the 74-line listing, minus
        assert result["directive_loc"] < 20  # blanks
        assert result["reduction_factor"] > 3.0
        assert "MPI_Waitall" in result["generated_c"]

    def test_generated_code_compiles_structurally(self):
        """Balanced braces/parens — a cheap well-formedness check."""
        code = productivity()["generated_c"]
        assert code.count("{") == code.count("}")
        assert code.count("(") == code.count(")")


class TestFigure4Harness:
    def test_quick_run_structure(self):
        fig = figure4(quick=True, wl_steps=1)
        assert len(fig.xs) == 3
        assert len(fig.series) == 5
        for ys in fig.series.values():
            assert all(y > 0 for y in ys)

    def test_custom_pcounts(self):
        fig = figure4(pcounts=[33], wl_steps=1)
        assert fig.xs == [33]
