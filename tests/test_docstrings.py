"""Documentation coverage: every public item carries a docstring.

Deliverable discipline: the library is only adoptable if its public
surface is documented. This test walks every module under ``repro``
and fails on any public module, class, function or method without a
docstring.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, obj


def test_all_modules_documented():
    undocumented = [m.__name__ for m in _walk_modules()
                    if not inspect.getdoc(m)]
    assert undocumented == [], \
        f"modules without docstrings: {undocumented}"


def test_all_public_classes_and_functions_documented():
    missing = []
    for module in _walk_modules():
        for name, obj in _public_members(module):
            if not inspect.getdoc(obj):
                missing.append(f"{module.__name__}.{name}")
    assert missing == [], f"undocumented public items: {missing}"


def test_all_public_methods_documented():
    missing = []
    for module in _walk_modules():
        for cname, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for mname, meth in vars(cls).items():
                if mname.startswith("_"):
                    continue
                if not (inspect.isfunction(meth)
                        or isinstance(meth, (classmethod, staticmethod,
                                             property))):
                    continue
                target = meth.__func__ if isinstance(
                    meth, (classmethod, staticmethod)) else (
                    meth.fget if isinstance(meth, property) else meth)
                if target is None or not inspect.getdoc(target):
                    missing.append(
                        f"{module.__name__}.{cname}.{mname}")
    assert missing == [], \
        f"undocumented public methods: {missing}"
