"""Communication-matrix analysis over traces."""

import numpy as np
import pytest

from repro import mpi, shmem
from repro.netmodel import zero_model
from repro.sim import Engine, comm_matrix


def traced_run(nprocs, fn):
    model = zero_model()
    eng = Engine(nprocs, trace=True)

    def main(env):
        comm = mpi.init(env, model)
        return fn(env, comm)

    eng.run(main)
    return comm_matrix(eng.trace, nprocs), eng


class TestCommMatrix:
    def test_counts_and_volume(self):
        def prog(env, comm):
            if env.rank == 0:
                comm.Send(np.zeros(4), dest=1)           # 32 bytes
                comm.Send(np.zeros(2), dest=2, tag=1)    # 16 bytes
            elif env.rank == 1:
                comm.Recv(np.zeros(4), source=0)
            elif env.rank == 2:
                comm.Recv(np.zeros(2), source=0, tag=1)

        m, _ = traced_run(3, prog)
        assert m.messages[0, 1] == 1
        assert m.volume[0, 1] == 32
        assert m.volume[0, 2] == 16
        assert m.total_messages == 2
        assert m.total_bytes == 48

    def test_hotspots_ordering(self):
        def prog(env, comm):
            if env.rank == 0:
                comm.Send(np.zeros(100), dest=1)
                comm.Send(np.zeros(1), dest=2, tag=1)
            elif env.rank == 1:
                comm.Recv(np.zeros(100), source=0)
            elif env.rank == 2:
                comm.Recv(np.zeros(1), source=0, tag=1)

        m, _ = traced_run(3, prog)
        hs = m.hotspots(k=2)
        assert hs[0] == (0, 1, 800)
        assert hs[1] == (0, 2, 8)

    def test_degree(self):
        def prog(env, comm):
            if env.rank == 0:
                for dst in (1, 2):
                    comm.Send(np.zeros(1), dest=dst)
            else:
                comm.Recv(np.zeros(1), source=0)

        m, _ = traced_run(3, prog)
        assert m.degree(0) == (2, 0)
        assert m.degree(1) == (0, 1)

    def test_small_message_fraction(self):
        def prog(env, comm):
            if env.rank == 0:
                comm.Send(np.zeros(3), dest=1)          # 24B (small)
                comm.Send(np.zeros(1000), dest=1, tag=1)  # 8000B
            else:
                comm.Recv(np.zeros(3), source=0, tag=0)
                comm.Recv(np.zeros(1000), source=0, tag=1)

        m, _ = traced_run(2, prog)
        assert m.small_message_fraction(256) == pytest.approx(0.5)

    def test_shmem_puts_counted(self):
        model = zero_model()
        eng = Engine(2, trace=True)

        def main(env):
            mpi.init(env, model)
            sh = shmem.init(env)
            dst = sh.malloc(4)
            if env.rank == 0:
                sh.put(dst, np.ones(4), pe=1)
            sh.barrier_all()

        eng.run(main)
        m = comm_matrix(eng.trace, 2)
        assert m.messages[0, 1] == 1
        assert m.volume[0, 1] == 32

    def test_subcommunicator_traffic_mapped_to_world_ranks(self):
        """Matrix rows/columns are world ranks, even for group comms."""
        def prog(env, comm):
            sub = comm.Split(color=env.rank % 2)  # evens: 0,2
            if env.rank == 0:
                sub.Send(np.zeros(1), dest=1)  # local 1 == world 2
            elif env.rank == 2:
                sub.Recv(np.zeros(1), source=0)

        m, _ = traced_run(4, prog)
        assert m.messages[0, 2] == 1
        assert m.messages[0, 1] == 0

    def test_render_summary(self):
        def prog(env, comm):
            if env.rank == 0:
                comm.Send(np.zeros(2), dest=1)
            else:
                comm.Recv(np.zeros(2), source=0)

        m, _ = traced_run(2, prog)
        out = m.render()
        assert "1 messages" in out
        assert "hotspot: 0 -> 1" in out

    def test_empty_trace(self):
        eng = Engine(2, trace=True)
        eng.run(lambda env: None)
        m = comm_matrix(eng.trace, 2)
        assert m.total_messages == 0
        assert m.small_message_fraction() == 0.0
        assert m.hotspots() == []


class TestWaitanyTestall:
    def test_waitany_returns_earliest_completion(self):
        def prog(env, comm):
            if env.rank == 0:
                comm.env.compute(1e-3)
                comm.Send(np.array([1.0]), dest=1, tag=7)
                comm.Send(np.array([2.0]), dest=1, tag=9)
                return None
            later = np.zeros(1)
            early = np.zeros(1)
            r1 = comm.Irecv(later, source=0, tag=9)
            r2 = comm.Irecv(early, source=0, tag=7)
            comm.env.compute(2e-3)  # both transfers complete meanwhile,
            # with distinct arrival-based completion times (tag 7 first)
            idx = comm.Waitany([r1, r2])
            comm.Wait(r1)  # drain the other request
            return (idx, early[0], later[0])

        from repro.netmodel import uniform_model
        model = uniform_model()  # distinct completion times
        eng = Engine(2)

        def main(env):
            comm = mpi.init(env, model)
            return prog(env, comm)

        res = eng.run(main)
        assert res.values[1] == (1, 1.0, 2.0)

    def test_testall_consumes_only_when_all_done(self):
        def prog(env, comm):
            if env.rank == 0:
                comm.Send(np.array([1.0]), dest=1, tag=0)
                comm.env.compute(1.0)
                comm.Send(np.array([2.0]), dest=1, tag=1)
                return None
            a, b = np.zeros(1), np.zeros(1)
            r1 = comm.Irecv(a, source=0, tag=0)
            r2 = comm.Irecv(b, source=0, tag=1)
            polls = 0
            while not comm.Testall([r1, r2]):
                polls += 1
            return (a[0], b[0], polls > 0)

        from repro.netmodel import uniform_model
        model = uniform_model()
        eng = Engine(2, max_time=100.0)

        def main(env):
            comm = mpi.init(env, model)
            return prog(env, comm)

        res = eng.run(main)
        assert res.values[1] == (1.0, 2.0, True)
