"""Scheduler-equivalence regression: heap engine vs the seed engine.

The heap ready queue and direct baton handoff must not change *any*
observable of a run — dispatch order, traces, virtual completion
times — only host wall-clock. These tests pin that equivalence on a
message-heavy synthetic workload and on the paper's WL-LSMS
application (quick mode), so a future scheduler change that perturbs
the deterministic ``(virtual time, rank)`` order fails loudly.
"""

import numpy as np
import pytest

from repro import mpi
from repro.apps.wllsms import AppConfig, run_app
from repro.netmodel import gemini_model
from repro.sim import Engine, SeedEngine

_MODEL = gemini_model()


def _ring_main(env):
    comm = mpi.init(env, _MODEL)
    out = np.full(64, float(env.rank))
    inb = np.zeros(64)
    for _ in range(4):
        rreq = comm.Irecv(inb, source=(env.rank - 1) % env.size)
        sreq = comm.Isend(out, dest=(env.rank + 1) % env.size)
        comm.Waitall([rreq, sreq])
        env.compute(1e-6 * (env.rank + 1))
    return env.now


class TestRingEquivalence:
    @pytest.mark.parametrize("nprocs", [2, 5, 16])
    def test_results_identical(self, nprocs):
        new = Engine(nprocs).run(_ring_main)
        old = SeedEngine(nprocs).run(_ring_main)
        assert new.values == old.values
        assert new.finish_times == old.finish_times
        assert new.makespan == old.makespan

    def test_traces_identical(self):
        """Event-by-event: same kinds, ranks and times in the same
        order — the dispatch sequence itself is unchanged."""
        new_eng = Engine(8, trace=True)
        old_eng = SeedEngine(8, trace=True)
        new_eng.run(_ring_main)
        old_eng.run(_ring_main)
        new_ev = [(e.time, e.rank, e.kind) for e in new_eng.trace]
        old_ev = [(e.time, e.rank, e.kind) for e in old_eng.trace]
        assert new_ev == old_ev


class TestWlLsmsEquivalence:
    """Acceptance criterion: identical makespan and finish times for
    the WL-LSMS demo (quick mode) before and after the change."""

    QUICK = dict(n_lsms=2, group_size=4, t=32, tc=4, wl_steps=2,
                 model=gemini_model())

    @pytest.mark.parametrize("variant,target", [
        ("original", "TARGET_COMM_MPI_2SIDE"),
        ("waitall", "TARGET_COMM_MPI_2SIDE"),
        ("directive", "TARGET_COMM_MPI_2SIDE"),
        ("directive", "TARGET_COMM_SHMEM"),
    ])
    def test_variant_equivalent(self, variant, target):
        cfg = AppConfig(variant=variant, target=target, **self.QUICK)
        new = run_app(cfg, engine_cls=Engine)
        old = run_app(cfg, engine_cls=SeedEngine)
        assert new.makespan == old.makespan
        assert new.finish_times == old.finish_times
        assert new.group_energies == old.group_energies
        assert np.array_equal(new.wang_landau.ln_g, old.wang_landau.ln_g)
