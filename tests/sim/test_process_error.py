"""SimProcessError diagnostics: the remote traceback travels with the
wrapper so the failing user line is visible on the driving thread."""

import pytest

from repro.errors import SimProcessError
from repro.sim import Engine


def _boom(env):
    marker_line = None  # noqa: F841 - anchors the line-number check
    raise ValueError(f"bad state on rank {env.rank}")


class TestRemoteTraceback:
    def test_user_line_number_in_message(self):
        """The line of `_boom` that raised must appear in the error."""
        eng = Engine(2)
        with pytest.raises(SimProcessError) as ei:
            eng.run(_boom)
        err = ei.value
        raise_line = _boom.__code__.co_firstlineno + 2
        assert f"test_process_error.py\", line {raise_line}" in str(err)
        assert "_boom" in str(err)
        assert 'raise ValueError(f"bad state on rank' in str(err)

    def test_original_and_rank_preserved(self):
        eng = Engine(3)
        with pytest.raises(SimProcessError) as ei:
            eng.run(_boom)
        err = ei.value
        assert isinstance(err.original, ValueError)
        assert f"rank {err.rank}" in str(err)
        assert err.remote_traceback  # full formatted traceback attached

    def test_nested_frames_are_kept(self):
        """Frames below the entry point (helpers the user called) stay
        in the report — the whole remote stack, not just the tip."""
        def helper():
            raise RuntimeError("deep failure")

        def main(env):
            helper()

        with pytest.raises(SimProcessError) as ei:
            Engine(1).run(main)
        msg = str(ei.value)
        assert "helper" in msg and "deep failure" in msg
        assert "--- traceback on rank 0 ---" in msg
