"""Trace and stats plumbing."""

import pytest

from repro.sim import Engine
from repro.sim.tracing import Trace, TraceEvent


class TestTrace:
    def test_record_and_query(self):
        tr = Trace()
        tr.record(0.0, 0, "send", dest=1)
        tr.record(1.0, 1, "recv", source=0)
        tr.record(2.0, 0, "send", dest=2)
        assert len(tr) == 3
        assert len(tr.of_kind("send")) == 2
        assert len(tr.by_rank(1)) == 1
        assert tr.kind_counts()["send"] == 2

    def test_maxlen_truncates_and_flags(self):
        tr = Trace(maxlen=2)
        for i in range(5):
            tr.record(float(i), 0, "x")
        # maxlen real events plus the one-line truncation warning.
        assert len(tr) == 3
        assert tr.truncated
        assert tr.dropped_events == 3
        last = tr.events[-1]
        assert last.kind == "trace.truncated"
        assert last.fields["maxlen"] == 2

    def test_no_truncation_means_no_drops(self):
        tr = Trace(maxlen=10)
        for i in range(5):
            tr.record(float(i), 0, "x")
        assert not tr.truncated
        assert tr.dropped_events == 0
        assert len(tr) == 5

    def test_event_str(self):
        e = TraceEvent(1.5e-6, 3, "mpi.send_post", {"dest": 1})
        s = str(e)
        assert "rank 3" in s
        assert "mpi.send_post" in s
        assert "dest=1" in s

    def test_render_limits(self):
        tr = Trace()
        for i in range(10):
            tr.record(float(i), 0, "k")
        out = tr.render(limit=3)
        assert "7 more events" in out

    def test_iteration(self):
        tr = Trace()
        tr.record(0.0, 0, "a")
        assert [e.kind for e in tr] == ["a"]


class TestEngineTraceIntegration:
    def test_engine_without_trace_records_nothing(self):
        eng = Engine(2, trace=False)
        eng.run(lambda env: env.compute(1.0, label="x"))
        assert eng.trace is None

    def test_engine_trace_bounded(self):
        eng = Engine(1, trace=True, trace_maxlen=3)

        def prog(env):
            for _ in range(10):
                env.compute(0.1, label="k")

        eng.run(prog)
        # Cap + the appended truncation warning event.
        assert len(eng.trace) == 4
        assert eng.trace.truncated
        assert eng.trace.dropped_events == 7
        assert eng.trace.events[-1].kind == "trace.truncated"

    def test_stats_summary_readable(self):
        eng = Engine(2)
        eng.run(lambda env: env.compute(1.0))
        s = eng.stats.summary()
        assert "compute=2" in s
        assert "messages=0" in s
