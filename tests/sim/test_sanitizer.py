"""The byte-interval access sanitizer (dynamic half of CI04x).

Differential cross-check of the static race pass:

* *negative control* — programs the static pass proves race-free run
  clean with ``sanitize=True`` on every lowering target, while the
  pairwise-check counter shows the sanitizer actually looked;
* *positive control* — every seeded counterexample in
  ``examples/pragmas/races/`` (statically refuted with CI04x) also
  aborts dynamically with a structured :class:`RaceError` on every
  target.
"""

from pathlib import Path

import pytest

from repro.core.analysis.progsim import simulate_program
from repro.core.pragma import parse_program
from repro.errors import RaceError
from repro.faults.fuzz import CASES, FUZZ_TARGETS, FUZZ_WATCHDOG
from repro.sim import Engine

ROOT = Path(__file__).resolve().parents[2]
RACES_DIR = ROOT / "examples" / "pragmas" / "races"

TARGETS = list(FUZZ_TARGETS)

RACE_EXAMPLES = sorted(p.stem for p in RACES_DIR.glob("*.c"))


def simulate_example(relpath, target, nprocs=8):
    source = (ROOT / "examples" / "pragmas" / relpath).read_text()
    return simulate_program(parse_program(source), nprocs,
                            target=target, sanitize=True)


class TestArming:
    def test_sanitizer_off_by_default(self):
        assert Engine(2).sanitizer is None

    def test_sanitize_true_attaches_sanitizer(self):
        eng = Engine(2, sanitize=True)
        assert eng.sanitizer is not None
        assert eng.sanitizer.nprocs == 2

    def test_checks_counter_hidden_when_zero(self):
        assert "sanitizer_checks" not in Engine(2).stats.summary()


class TestNegativeControl:
    @pytest.mark.parametrize("target", TARGETS)
    @pytest.mark.parametrize("example", ["ring.c", "evenodd.c"])
    def test_clean_examples_sanitize_clean(self, example, target):
        outcome = simulate_example(example, target)
        assert outcome.stats is not None
        # The run is only evidence if the sanitizer actually compared
        # access pairs.
        assert outcome.stats.sanitizer_checks > 0
        assert "sanitizer_checks" in outcome.stats.summary()

    @pytest.mark.parametrize("target", TARGETS)
    def test_ring_fuzz_baseline_sanitizes_clean(self, target):
        tally = {}
        CASES[0].baseline(target, FUZZ_WATCHDOG, True, tally)
        assert tally["sanitizer_checks"] > 0
        assert tally["runs"] >= 1

    @pytest.mark.slow
    @pytest.mark.parametrize("target", TARGETS)
    def test_all_fuzz_patterns_sanitize_clean(self, target):
        # Full differential negative control: every statically
        # race-free fuzz pattern, unperturbed, on every target.
        tally = {}
        for case in CASES:
            case.baseline(target, FUZZ_WATCHDOG, True, tally)
        assert tally["sanitizer_checks"] > 0
        assert tally["runs"] >= len(CASES)


class TestPositiveControl:
    @pytest.mark.parametrize("target", TARGETS)
    @pytest.mark.parametrize("stem", RACE_EXAMPLES)
    def test_seeded_race_aborts_on_every_target(self, stem, target):
        with pytest.raises(RaceError) as exc:
            simulate_example(f"races/{stem}.c", target)
        err = exc.value
        assert err.kind in ("write-write", "read-write")
        assert len(err.ranks) == 2
        assert len(err.labels) == 2
        assert err.overlap_nbytes > 0
        assert "access sanitizer" in str(err)
        assert "byte(s) overlap" in str(err)

    def test_symheap_collision_is_write_write_across_origins(self):
        with pytest.raises(RaceError) as exc:
            simulate_example("races/symheap_collision.c",
                             "TARGET_COMM_SHMEM")
        err = exc.value
        assert err.kind == "write-write"
        assert err.ranks[0] != err.ranks[1]

    def test_send_reuse_is_read_write_on_posted_buffer(self):
        with pytest.raises(RaceError) as exc:
            simulate_example("races/send_reuse.c",
                             "TARGET_COMM_MPI_2SIDE")
        assert exc.value.kind == "read-write"
