"""Unit tests for the cooperative virtual-time scheduler."""

import re

import pytest

from repro.errors import SimDeadlockError, SimProcessError, SimStateError
from repro.sim import Engine, Rendezvous


def test_single_rank_runs_and_returns_value():
    eng = Engine(1)
    res = eng.run(lambda env: env.rank * 10 + 7)
    assert res.values == [7]
    assert res.finish_times == [0.0]
    assert res.makespan == 0.0


def test_all_ranks_run_once():
    eng = Engine(5)
    res = eng.run(lambda env: env.rank)
    assert res.values == [0, 1, 2, 3, 4]


def test_env_identity():
    eng = Engine(3)
    res = eng.run(lambda env: (env.rank, env.size))
    assert res.values == [(0, 3), (1, 3), (2, 3)]


def test_compute_advances_virtual_clock():
    def prog(env):
        env.compute(0.5)
        env.compute(0.25)
        return env.now

    res = Engine(2).run(prog)
    assert res.values == [0.75, 0.75]
    assert res.makespan == 0.75
    assert res.finish_times == [0.75, 0.75]


def test_compute_costs_differ_per_rank():
    def prog(env):
        env.compute(0.1 * (env.rank + 1))
        return env.now

    res = Engine(3).run(prog)
    assert res.finish_times == pytest.approx([0.1, 0.2, 0.3])
    assert res.makespan == pytest.approx(0.3)


def test_compute_rejects_negative():
    def prog(env):
        env.compute(-1.0)

    with pytest.raises(SimProcessError) as ei:
        Engine(1).run(prog)
    assert isinstance(ei.value.original, ValueError)


def test_advance_does_not_yield_but_moves_clock():
    def prog(env):
        env.advance(2.0)
        return env.now

    res = Engine(1).run(prog)
    assert res.values == [2.0]


def test_advance_to_is_monotone():
    def prog(env):
        env.advance_to(5.0)
        env.advance_to(1.0)  # no-op: clocks never go backwards
        return env.now

    assert Engine(1).run(prog).values == [5.0]


def test_mpmd_runs_distinct_programs():
    eng = Engine(2)
    res = eng.run([lambda env: "a", lambda env: "b"])
    assert res.values == ["a", "b"]


def test_mpmd_wrong_count_rejected():
    with pytest.raises(ValueError):
        Engine(3).run([lambda env: None])


def test_user_exception_is_wrapped_with_rank():
    def prog(env):
        if env.rank == 2:
            raise RuntimeError("boom")
        env.compute(1.0)

    with pytest.raises(SimProcessError) as ei:
        Engine(4).run(prog)
    assert ei.value.rank == 2
    assert isinstance(ei.value.original, RuntimeError)


def test_engine_reusable_after_failure():
    eng = Engine(2)
    with pytest.raises(SimProcessError):
        eng.run(lambda env: 1 / 0)
    res = eng.run(lambda env: env.rank)
    assert res.values == [0, 1]


def test_deadlock_detected_with_diagnostics():
    def prog(env):
        if env.rank == 0:
            env.make_waiter("message that never comes")
            env.block("recv")
        # rank 1 just exits

    with pytest.raises(SimDeadlockError) as ei:
        Engine(2).run(prog)
    assert 0 in ei.value.blocked
    assert "never comes" in ei.value.blocked[0]


def test_block_and_wake_transfers_payload_and_time():
    waiters = {}

    def prog(env):
        if env.rank == 0:
            w = env.make_waiter("value from rank 1")
            waiters[0] = w
            got = env.block("wait-for-1")
            return (got.payload, env.now)
        else:
            env.compute(3.0)
            # rank 0 is blocked by now (it runs first at t=0).
            env.engine.wake(waiters[0], env.now + 1.0, payload="hello")
            return None

    res = Engine(2).run(prog)
    assert res.values[0] == ("hello", 4.0)


def test_wake_twice_rejected():
    def prog(env):
        if env.rank == 0:
            w = env.make_waiter("x")
            env.engine.services["w"] = w
            env.block("x")
        else:
            env.compute(1.0)
            w = env.engine.services["w"]
            env.engine.wake(w, 2.0)
            with pytest.raises(SimStateError):
                env.engine.wake(w, 3.0)

    Engine(2).run(prog)


def test_wake_of_unblocked_rank_rejected():
    """wake() may only target a rank that has actually blocked: waking
    a READY/RUNNING rank would enqueue it into the ready heap twice."""
    def prog(env):
        if env.rank == 0:
            # Install a waiter but keep running — never call block().
            env.make_waiter("never blocked on")
            env.engine.services["w"] = env._proc.waiter
            env.compute(10.0)
        else:
            env.compute(1.0)  # rank 0 has yielded but is READY, not blocked
            with pytest.raises(SimStateError, match="not blocked"):
                env.engine.wake(env.engine.services["w"], 2.0)

    Engine(2).run(prog)


_MAX_TIME_MSG = re.compile(
    r"virtual time .* exceeded max_time .* on rank \d+")


def test_max_time_same_error_from_compute_path():
    """The rank-thread guard (check_time) raises the unified shape."""
    def prog(env):
        while True:
            env.compute(1.0)

    with pytest.raises(SimDeadlockError) as ei:
        Engine(1, max_time=100.0).run(prog)
    assert _MAX_TIME_MSG.search(str(ei.value))


def test_max_time_same_error_from_wake_path():
    """A rank woken *past* max_time is aborted by the dispatch-side
    guard (scheduler/handoff path) with the identical error shape."""
    def prog(env):
        if env.rank == 0:
            env.make_waiter("late wake")
            env.engine.services["w"] = env._proc.waiter
            env.block("w")
            env.compute(1.0)  # never reached: woken past max_time
        else:
            env.compute(1.0)
            env.engine.wake(env.engine.services["w"], 500.0)

    with pytest.raises(SimDeadlockError) as ei:
        Engine(2, max_time=100.0).run(prog)
    assert _MAX_TIME_MSG.search(str(ei.value))


def test_scheduler_counters_populate():
    def prog(env):
        for _ in range(5):
            env.compute(1.0)
        if env.rank == 0:
            w = env.make_waiter("ping")
            env.engine.services["w"] = w
            env.block("ping")
        else:
            env.engine.wake(env.engine.services["w"], env.now)

    eng = Engine(2)
    eng.run(prog)
    # Every READY transition goes through the heap...
    assert eng.stats.heap_ops > 0
    # ...blocked->running resumptions use rank-to-rank handoff...
    assert eng.stats.direct_handoffs > 0
    # ...and the dispatch loop's wall time is accounted.
    assert eng.stats.dispatch_wall_seconds > 0.0


def test_fast_yield_skips_switch():
    """A lone rank never has anyone ahead of it: all its yields take
    the no-switch fast path."""
    eng = Engine(1)
    eng.run(lambda env: [env.compute(1.0) for _ in range(10)])
    assert eng.stats.fast_yields >= 10


def test_wake_never_moves_clock_backwards():
    def prog(env):
        if env.rank == 0:
            env.compute(10.0)  # rank 0 is already far ahead
            env.make_waiter("late wake")
            env.engine.services["w"] = env._proc.waiter
            got = env.block("w")
            assert got.wake_time == 1.0
            return env.now
        else:
            env.compute(20.0)  # ensure rank 0 blocks first
            env.engine.wake(env.engine.services["w"], 1.0)
            return None

    res = Engine(2).run(prog)
    assert res.values[0] == 10.0  # not dragged back to 1.0


def test_deterministic_scheduling_order():
    """With equal clocks, ranks are dispatched in rank order."""
    order = []

    def prog(env):
        order.append(env.rank)
        env.compute(1.0)
        order.append(env.rank)

    Engine(4).run(prog)
    assert order[:4] == [0, 1, 2, 3]
    assert order[4:] == [0, 1, 2, 3]


def test_min_time_first_scheduling():
    order = []

    def prog(env):
        env.compute(1.0 / (env.rank + 1))  # rank 3 finishes step 1 first
        order.append(env.rank)

    Engine(4).run(prog)
    assert order == [3, 2, 1, 0]


def test_max_time_guard():
    def prog(env):
        while True:
            env.compute(1.0)

    with pytest.raises(SimDeadlockError):
        Engine(1, max_time=100.0).run(prog)


def test_trace_records_compute_events():
    eng = Engine(2, trace=True)

    def prog(env):
        env.compute(1.0, label="kernel")

    eng.run(prog)
    events = eng.trace.of_kind("compute")
    assert len(events) == 2
    assert {e.rank for e in events} == {0, 1}
    assert all(e.fields["label"] == "kernel" for e in events)


def test_stats_accumulate_compute_seconds():
    eng = Engine(3)
    eng.run(lambda env: env.compute(2.0))
    assert eng.stats.compute_seconds == pytest.approx(6.0)


def test_nested_run_rejected():
    eng = Engine(1)

    def prog(env):
        eng.run(lambda e: None)

    with pytest.raises(SimProcessError) as ei:
        eng.run(prog)
    assert isinstance(ei.value.original, SimStateError)


def test_zero_procs_rejected():
    with pytest.raises(ValueError):
        Engine(0)


class TestRendezvous:
    def test_all_released_at_max_arrival(self):
        bar = Rendezvous(range(3), name="test-bar")

        def prog(env):
            env.compute(float(env.rank))  # arrive at t = rank
            bar.join(env)
            return env.now

        res = Engine(3).run(prog)
        assert res.values == [2.0, 2.0, 2.0]

    def test_cost_function_applied(self):
        bar = Rendezvous(range(4), cost_fn=lambda n: 0.5 * n)

        def prog(env):
            bar.join(env)
            return env.now

        res = Engine(4).run(prog)
        assert res.values == [2.0] * 4

    def test_reusable_across_generations(self):
        bar = Rendezvous(range(2))

        def prog(env):
            times = []
            for step in range(3):
                env.compute(1.0 if env.rank == 0 else 2.0)
                bar.join(env)
                times.append(env.now)
            return times

        res = Engine(2).run(prog)
        assert res.values[0] == res.values[1] == [2.0, 4.0, 6.0]

    def test_subset_members_only(self):
        bar = Rendezvous([0, 2])

        def prog(env):
            if env.rank in (0, 2):
                env.compute(1.0 + env.rank)
                bar.join(env)
            return env.now

        res = Engine(3).run(prog)
        assert res.values[0] == 3.0
        assert res.values[2] == 3.0
        assert res.values[1] == 0.0

    def test_non_member_join_rejected(self):
        bar = Rendezvous([0])

        def prog(env):
            if env.rank == 1:
                bar.join(env)

        with pytest.raises(SimProcessError) as ei:
            Engine(2).run(prog)
        assert isinstance(ei.value.original, SimStateError)

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            Rendezvous([])

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError):
            Rendezvous([0, 0, 1])
