"""Shared helpers for running SPMD test programs."""

from __future__ import annotations

from repro import mpi, shmem
from repro.netmodel import zero_model
from repro.sim import Engine


def mpi_run(nprocs, fn, *, model=None, trace=False, max_time=None):
    """Run ``fn(comm)`` on every rank; returns (RunResult, Engine)."""
    model = model or zero_model()
    eng = Engine(nprocs, trace=trace, max_time=max_time)
    res = eng.run(lambda env: fn(mpi.init(env, model)))
    return res, eng


def shmem_run(nprocs, fn, *, model=None, trace=False, max_time=None):
    """Run ``fn(sh)`` on every PE; returns (RunResult, Engine)."""
    model = model or zero_model()
    eng = Engine(nprocs, trace=trace, max_time=max_time)
    res = eng.run(lambda env: fn(shmem.init(env, model)))
    return res, eng
